// Tests for failure scenarios and the optical restoration algorithm (§8).
#include <gtest/gtest.h>

#include <set>

#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "planning/plan_io.h"
#include "restoration/apply.h"
#include "restoration/metrics.h"
#include "restoration/restorer.h"
#include "restoration/scenario.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::restoration {
namespace {

using planning::HeuristicPlanner;

// A square ring: two disjoint routes between any node pair, so every
// single-fiber cut is restorable.
topology::Network ring_net(double demand_gbps = 400,
                           double side_km = 300) {
  topology::Network net;
  net.name = "ring";
  for (int i = 0; i < 4; ++i) net.optical.add_node("n" + std::to_string(i));
  net.optical.add_fiber(0, 1, side_km);
  net.optical.add_fiber(1, 2, side_km);
  net.optical.add_fiber(2, 3, side_km);
  net.optical.add_fiber(3, 0, side_km);
  net.ip.add_link(0, 1, demand_gbps);
  return net;
}

TEST(Scenario, SingleFiberCutsCoverEveryFiber) {
  const auto net = topology::make_cernet();
  const auto scenarios = single_fiber_cuts(net.optical);
  ASSERT_EQ(static_cast<int>(scenarios.size()), net.optical.fiber_count());
  std::set<topology::FiberId> covered;
  for (const auto& s : scenarios) {
    ASSERT_EQ(s.cut_fibers.size(), 1u);
    covered.insert(s.cut_fibers[0]);
    EXPECT_TRUE(s.cuts(s.cut_fibers[0]));
    EXPECT_FALSE(s.cuts(-1));
  }
  EXPECT_EQ(static_cast<int>(covered.size()), net.optical.fiber_count());
}

TEST(Scenario, ProbabilisticScenariosNonEmptyAndWeighted) {
  const auto net = topology::make_cernet();
  Rng rng(9);
  const auto scenarios = probabilistic_scenarios(net.optical, 20, rng);
  EXPECT_EQ(scenarios.size(), 20u);
  for (const auto& s : scenarios) {
    EXPECT_FALSE(s.cut_fibers.empty());
    EXPECT_GT(s.probability, 0.0);
    EXPECT_LT(s.probability, 1.0);
  }
}

TEST(Scenario, StandardSetCombinesBoth) {
  const auto net = topology::make_cernet();
  const auto set = standard_scenario_set(net.optical, 10, 3);
  EXPECT_EQ(static_cast<int>(set.size()), net.optical.fiber_count() + 10);
}

TEST(Scenario, CutsMembershipOnSortedSets) {
  // cut_fibers is sorted (struct invariant); cuts() binary-searches it.
  const FailureScenario s{{1, 4, 7}, 1.0};
  EXPECT_TRUE(s.cuts(1));
  EXPECT_TRUE(s.cuts(4));
  EXPECT_TRUE(s.cuts(7));
  EXPECT_FALSE(s.cuts(0));
  EXPECT_FALSE(s.cuts(2));
  EXPECT_FALSE(s.cuts(9));
  EXPECT_FALSE(s.cuts(-1));
  EXPECT_FALSE(FailureScenario{}.cuts(0));
}

TEST(Scenario, ProbabilisticScenariosAreSorted) {
  const auto net = topology::make_cernet();
  Rng rng(5);
  for (const auto& s : probabilistic_scenarios(net.optical, 25, rng)) {
    EXPECT_TRUE(std::is_sorted(s.cut_fibers.begin(), s.cut_fibers.end()));
  }
}

TEST(Scenario, RedrawLoopIsBoundedAtNearZeroCutRate) {
  // With a near-zero rate almost every draw is empty; the sampler must cap
  // its attempts and return what it has (usually nothing) instead of
  // spinning indefinitely.
  const auto net = topology::make_cernet();
  Rng rng(13);
  const auto scenarios =
      probabilistic_scenarios(net.optical, 8, rng, /*cut_rate=*/1e-12);
  EXPECT_LE(scenarios.size(), 8u);
  for (const auto& s : scenarios) EXPECT_FALSE(s.cut_fibers.empty());
  // A zero rate terminates too, and a zero count asks for nothing.
  Rng rng2(13);
  EXPECT_TRUE(probabilistic_scenarios(net.optical, 4, rng2, 0.0).empty());
  EXPECT_TRUE(probabilistic_scenarios(net.optical, 0, rng2).empty());
}

TEST(Apply, ApplyThenRevertRoundTripsPlanBytes) {
  // The lifecycle simulator's repair path depends on apply → revert being
  // byte-exact under plan_io serialization.
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const std::string before = planning::save_plan(*plan);
  Restorer restorer(transponder::svt_flexwan());

  for (const FailureScenario& scenario :
       {FailureScenario{{0}, 1.0}, FailureScenario{{0, 3}, 1.0},
        FailureScenario{{2, 5, 9}, 1.0}}) {
    const auto outcome = restorer.restore(net, *plan, scenario);
    auto applied = apply_outcome(*plan, scenario, outcome);
    ASSERT_TRUE(applied) << applied.error().message;
    // The live plan now carries survivors + restored wavelengths.
    const int expected = plan->transponder_count();
    EXPECT_EQ(expected,
              static_cast<int>(planning::load_plan(before)->transponder_count() -
                               applied->removed.size() +
                               applied->restored.size()));
    if (outcome.affected_gbps > 0.0) {
      EXPECT_NE(planning::save_plan(*plan), before);
    }
    const auto reverted = revert_outcome(*plan, *applied);
    ASSERT_TRUE(reverted) << reverted.error().message;
    EXPECT_EQ(planning::save_plan(*plan), before);
  }
}

TEST(Apply, AppliedPlanStillLoadsAndAccountsCapacity) {
  // Mid-failure state is a valid plan document: conflict-checked load
  // succeeds and the delivered capacity is affected-restored below the
  // deployed plan.
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  double deployed = 0.0;
  for (const auto& lp : plan->links()) deployed += lp.provisioned_gbps();

  const FailureScenario scenario{{0}, 1.0};
  Restorer restorer(transponder::svt_flexwan());
  const auto outcome = restorer.restore(net, *plan, scenario);
  ASSERT_GT(outcome.affected_gbps, 0.0);
  auto applied = apply_outcome(*plan, scenario, outcome);
  ASSERT_TRUE(applied) << applied.error().message;

  const auto reloaded = planning::load_plan(planning::save_plan(*plan));
  ASSERT_TRUE(reloaded) << reloaded.error().message;
  double delivered = 0.0;
  for (const auto& lp : plan->links()) delivered += lp.provisioned_gbps();
  EXPECT_NEAR(delivered,
              deployed - outcome.affected_gbps + outcome.restored_gbps, 1e-6);
  ASSERT_TRUE(revert_outcome(*plan, *applied));
}

TEST(Apply, MismatchedOutcomeIsRejectedAtomically) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const std::string before = planning::save_plan(*plan);
  Restorer restorer(transponder::svt_flexwan());
  // Outcome computed for fiber 0 but applied against a fiber-1 scenario.
  const auto outcome = restorer.restore(net, *plan, FailureScenario{{0}, 1.0});
  ASSERT_GT(outcome.affected_gbps, 0.0);
  const auto applied =
      apply_outcome(*plan, FailureScenario{{1}, 1.0}, outcome);
  ASSERT_FALSE(applied);
  EXPECT_EQ(applied.error().code, "outcome_mismatch");
  EXPECT_EQ(planning::save_plan(*plan), before);
}

TEST(Restorer, UnaffectedScenarioIsFullCapability) {
  auto net = ring_net();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  // The link 0-1 rides fiber 0; cutting fiber 2 (2-3) touches nothing.
  Restorer restorer(transponder::svt_flexwan());
  const auto outcome = restorer.restore(net, *plan, FailureScenario{{2}, 1.0});
  EXPECT_DOUBLE_EQ(outcome.affected_gbps, 0.0);
  EXPECT_DOUBLE_EQ(outcome.capability(), 1.0);
  EXPECT_TRUE(outcome.wavelengths.empty());
}

TEST(Restorer, RestoresFullCapacityOnRing) {
  auto net = ring_net(400, 300);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Restorer restorer(transponder::svt_flexwan());
  // Cut the direct fiber 0-1: the 900 km detour (0-3-2-1) must carry 400G.
  const auto outcome = restorer.restore(net, *plan, FailureScenario{{0}, 1.0});
  EXPECT_DOUBLE_EQ(outcome.affected_gbps, 400.0);
  EXPECT_DOUBLE_EQ(outcome.restored_gbps, 400.0);
  EXPECT_DOUBLE_EQ(outcome.capability(), 1.0);
  for (const auto& rw : outcome.wavelengths) {
    EXPECT_FALSE(rw.path.uses_fiber(0));
    EXPECT_GE(rw.mode.reach_km, rw.path.length_km);
  }
}

TEST(Restorer, SvtWidensChannelOnLongerRestorationPath) {
  // §3.3's motivating case: primary 600 km at 400G@75 (reach 600); the
  // restoration path is 900 km, beyond 75 GHz reach at 400G — the SVT must
  // widen the channel to keep the full rate.
  auto net = ring_net(400, 300);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Restorer restorer(transponder::svt_flexwan());
  const auto outcome = restorer.restore(net, *plan, FailureScenario{{0}, 1.0});
  ASSERT_FALSE(outcome.wavelengths.empty());
  double total = 0.0;
  for (const auto& rw : outcome.wavelengths) {
    total += rw.mode.data_rate_gbps;
    EXPECT_GE(rw.path.length_km, 900.0);
  }
  EXPECT_DOUBLE_EQ(total, 400.0);
}

TEST(Restorer, BvtLosesCapacityOnLongerRestorationPath) {
  // Same cut under RADWAN: primary 600 km runs 2 x 300G@8QAM... actually
  // 400G needs 2 BVTs (300+100 or 2x200).  On the 900 km detour the BVT can
  // still do 300G per lambda, so RADWAN may also restore fully here; the
  // distinguishing case is a detour beyond 1100 km where 300G dies.
  auto net = ring_net(600, 400);  // primary 400 km, detour 1200 km
  HeuristicPlanner planner(transponder::bvt_radwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  // Plan uses 2 x 300G on the 400 km path.
  Restorer restorer(transponder::bvt_radwan());
  const auto outcome = restorer.restore(net, *plan, FailureScenario{{0}, 1.0});
  EXPECT_DOUBLE_EQ(outcome.affected_gbps, 600.0);
  // On 1200 km, BVT tops out at 200G per transponder; 2 spares -> 400G.
  EXPECT_DOUBLE_EQ(outcome.restored_gbps, 400.0);
  EXPECT_LT(outcome.capability(), 1.0);
}

TEST(Restorer, SvtRevivesMoreThanBvtOnLongDetour) {
  // Same geometry under FlexWAN: the plan packs 600G into one 600G@100
  // wavelength, so one spare pair exists.  On the 1200 km detour that SVT
  // widens to 500G@125 (reach 1200) — 500 of 600 Gbps revived, strictly
  // more than RADWAN's 400 of 600 with twice the spares.
  auto net = ring_net(600, 400);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  ASSERT_EQ(plan->transponder_count(), 1);
  Restorer restorer(transponder::svt_flexwan());
  const auto outcome = restorer.restore(net, *plan, FailureScenario{{0}, 1.0});
  EXPECT_NEAR(outcome.capability(), 5.0 / 6.0, 1e-9);
  EXPECT_GT(outcome.capability(), 2.0 / 3.0);  // RADWAN's ratio above
}

TEST(Restorer, RespectsSpareTransponderBudget) {
  auto net = ring_net(800, 200);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  const int planned = plan->transponder_count();
  Restorer restorer(transponder::svt_flexwan());
  const auto outcome = restorer.restore(net, *plan, FailureScenario{{0}, 1.0});
  for (const auto& lr : outcome.links) {
    EXPECT_LE(lr.used_transponders, lr.spare_transponders);
    EXPECT_LE(lr.restored_gbps, lr.affected_gbps + 1e-9);
  }
  EXPECT_LE(static_cast<int>(outcome.wavelengths.size()), planned);
}

TEST(Restorer, ExtraSparesLiftCapability) {
  // Engineer scarcity: tiny band so restoration is spectrum/spare limited.
  auto net = ring_net(1600, 300);
  planning::PlannerConfig config;
  HeuristicPlanner planner(transponder::svt_flexwan(), config);
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Restorer restorer(transponder::svt_flexwan());
  const auto base = restorer.restore(net, *plan, FailureScenario{{0}, 1.0});
  std::map<topology::LinkId, int> extras;
  extras[0] = 4;
  const auto boosted =
      restorer.restore(net, *plan, FailureScenario{{0}, 1.0}, extras);
  EXPECT_GE(boosted.restored_gbps, base.restored_gbps);
}

TEST(Restorer, NoRestorationPathMeansZeroRestored) {
  // A single fiber between two nodes: cutting it leaves no alternative.
  topology::Network net;
  net.optical.add_node("a");
  net.optical.add_node("b");
  net.optical.add_fiber(0, 1, 200);
  net.ip.add_link(0, 1, 300);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Restorer restorer(transponder::svt_flexwan());
  const auto outcome = restorer.restore(net, *plan, FailureScenario{{0}, 1.0});
  // The planner may overprovision (e.g. a 400G channel for 300G of demand
  // when the cost ties); affected capacity is whatever actually rode the cut
  // fiber, and none of it is recoverable.
  EXPECT_GE(outcome.affected_gbps, 300.0);
  EXPECT_DOUBLE_EQ(outcome.restored_gbps, 0.0);
  EXPECT_DOUBLE_EQ(outcome.capability(), 0.0);
}

TEST(Restorer, RestoredSpectrumNeverCollidesWithSurvivors) {
  // Property on the T-backbone: for several cuts, re-assemble the full
  // spectrum map (survivors + restored) and verify zero overlap.
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Restorer restorer(transponder::svt_flexwan());
  for (topology::FiberId cut = 0; cut < net.optical.fiber_count(); cut += 3) {
    const FailureScenario scenario{{cut}, 1.0};
    const auto outcome = restorer.restore(net, *plan, scenario);
    std::vector<spectrum::Occupancy> map(
        static_cast<std::size_t>(net.optical.fiber_count()),
        spectrum::Occupancy(spectrum::kCBandPixels));
    // Survivors keep their planned spectrum.
    for (const auto& lp : plan->links()) {
      for (const auto& wl : lp.wavelengths) {
        const auto& path = lp.paths[static_cast<std::size_t>(wl.path_index)];
        if (path.uses_fiber(cut)) continue;
        for (topology::FiberId f : path.fibers) {
          ASSERT_TRUE(map[static_cast<std::size_t>(f)].reserve(wl.range));
        }
      }
    }
    // Restored wavelengths must fit into what is left.
    for (const auto& rw : outcome.wavelengths) {
      EXPECT_FALSE(rw.path.uses_fiber(cut));
      for (topology::FiberId f : rw.path.fibers) {
        ASSERT_TRUE(map[static_cast<std::size_t>(f)].reserve(rw.range))
            << "restored wavelength collides on fiber " << f;
      }
    }
  }
}

TEST(Restorer, MultiFiberCutsHandled) {
  // Simultaneous cuts on both ring directions isolate the endpoints.
  auto net = ring_net(400, 300);
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Restorer restorer(transponder::svt_flexwan());
  // Fiber 0 (0-1 direct) + fiber 3 (3-0): node 0 is fully disconnected.
  const auto outcome =
      restorer.restore(net, *plan, FailureScenario{{0, 3}, 1.0});
  EXPECT_DOUBLE_EQ(outcome.affected_gbps, 400.0);
  EXPECT_DOUBLE_EQ(outcome.restored_gbps, 0.0);
  // Cutting 0 and 2 (the far side) still leaves the 3-hop detour for 0-1.
  const auto partial =
      restorer.restore(net, *plan, FailureScenario{{0, 2}, 1.0});
  EXPECT_DOUBLE_EQ(partial.affected_gbps, 400.0);
  EXPECT_DOUBLE_EQ(partial.restored_gbps, 0.0)
      << "fiber 2 sits on the only detour";
}

TEST(Restorer, ProbabilisticScenarioSweepKeepsInvariants) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Restorer restorer(transponder::svt_flexwan());
  Rng rng(31);
  const auto scenarios = probabilistic_scenarios(net.optical, 15, rng);
  for (const auto& scenario : scenarios) {
    const auto outcome = restorer.restore(net, *plan, scenario);
    EXPECT_LE(outcome.restored_gbps, outcome.affected_gbps + 1e-9);
    for (const auto& rw : outcome.wavelengths) {
      for (topology::FiberId f : scenario.cut_fibers) {
        EXPECT_FALSE(rw.path.uses_fiber(f))
            << "restored wavelength routed over a cut fiber";
      }
      EXPECT_GE(rw.mode.reach_km, rw.path.length_km);
    }
  }
}

TEST(FlexwanPlus, SparesAreHalfTheSavings) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner flex(transponder::svt_flexwan(), {});
  HeuristicPlanner rad(transponder::bvt_radwan(), {});
  const auto pf = flex.plan(net);
  const auto pr = rad.plan(net);
  ASSERT_TRUE(pf);
  ASSERT_TRUE(pr);
  const auto extras = flexwan_plus_spares(*pf, *pr);
  EXPECT_FALSE(extras.empty());
  for (const auto& [link, extra] : extras) {
    const auto* lf = pf->find_link(link);
    const auto* lr = pr->find_link(link);
    ASSERT_NE(lf, nullptr);
    ASSERT_NE(lr, nullptr);
    const int saved = static_cast<int>(lr->wavelengths.size()) -
                      static_cast<int>(lf->wavelengths.size());
    EXPECT_EQ(extra, saved / 2);
    EXPECT_GT(extra, 0);  // links with nothing to redeploy are omitted
  }
}

TEST(Metrics, ScenarioEvaluationAggregates) {
  const auto net = topology::make_tbackbone();
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  Restorer restorer(transponder::svt_flexwan());
  const auto scenarios = single_fiber_cuts(net.optical);
  const auto m = evaluate_scenarios(net, *plan, restorer, scenarios);
  EXPECT_EQ(m.capabilities.size(), scenarios.size());
  for (double c : m.capabilities) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
  EXPECT_GT(m.mean_capability, 0.5);
  // Fig. 15(a): restored paths are (almost always) longer than originals.
  int longer = 0;
  for (double s : m.path_stretch) {
    if (s >= 1.0) ++longer;
  }
  EXPECT_GE(longer, static_cast<int>(m.path_stretch.size() * 9 / 10));
}

TEST(Metrics, OverloadFavoursFlexwanAsInFig15b) {
  // "Overloaded" = the largest scale RADWAN can still plan at: its spectrum
  // is then nearly exhausted while FlexWAN retains headroom (§8).
  const auto base = topology::make_tbackbone();
  HeuristicPlanner flex(transponder::svt_flexwan(), {});
  HeuristicPlanner rad(transponder::bvt_radwan(), {});
  const double overload = planning::max_supported_scale(base, rad, 10.0, 0.5);
  ASSERT_GE(overload, 1.0);
  const topology::Network loaded{base.name, base.optical,
                                 base.ip.scaled(overload)};
  const auto scenarios = single_fiber_cuts(base.optical);
  const auto pf = flex.plan(loaded);
  const auto pr = rad.plan(loaded);
  ASSERT_TRUE(pf);
  ASSERT_TRUE(pr);
  const auto mf = evaluate_scenarios(
      loaded, *pf, Restorer(transponder::svt_flexwan()), scenarios);
  const auto mr = evaluate_scenarios(
      loaded, *pr, Restorer(transponder::bvt_radwan()), scenarios);
  EXPECT_GT(mf.mean_capability, mr.mean_capability);
}

}  // namespace
}  // namespace flexwan::restoration
