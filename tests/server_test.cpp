// Tests for the flexwand control-plane service (src/server): wire-protocol
// round-trips and framing, snapshot-isolated reads, the single-writer
// group-commit path under real client threads (serialized commit order, no
// lost updates — the TSan CI job runs this file), batch coalescing,
// scripted-replay byte determinism across engine thread counts, and the
// centralized-vs-distributed deploy audit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "planning/plan_io.h"
#include "server/protocol.h"
#include "server/replay.h"
#include "server/service.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::server {
namespace {

Request make_request(const std::string& text) {
  auto parsed = parse_request(text);
  EXPECT_TRUE(parsed.has_value())
      << (parsed ? "" : parsed.error().message) << " in: " << text;
  return parsed ? std::move(parsed.value()) : Request{};
}

// A service over the smaller CERNET topology — every test that does not
// care about which network runs here.
std::unique_ptr<Service> make_service(const engine::Engine& engine) {
  return std::make_unique<Service>(topology::make_cernet(),
                                   transponder::svt_flexwan(), engine);
}

const obs::json::Object& result_object(const Response& response) {
  EXPECT_TRUE(response.ok) << response.error_code << ": "
                           << response.error_message;
  return response.result.as_object();
}

double result_number(const Response& response, const std::string& key) {
  for (const auto& [k, v] : result_object(response)) {
    if (k == key) return v.as_number();
  }
  ADD_FAILURE() << "missing result key " << key;
  return 0.0;
}

bool result_bool(const Response& response, const std::string& key) {
  for (const auto& [k, v] : result_object(response)) {
    if (k == key) return v.as_bool();
  }
  ADD_FAILURE() << "missing result key " << key;
  return false;
}

// --- protocol ---------------------------------------------------------------

TEST(Protocol, RequestRoundTripsThroughJson) {
  const Request request = make_request(
      R"({"id": 7, "method": "extend", "params": {"link_id": 3, "gbps": 200}})");
  EXPECT_EQ(request.id, 7u);
  EXPECT_EQ(request.method, Method::kExtend);
  EXPECT_EQ(request.method_name, "extend");

  const Request again = make_request(request.to_json());
  EXPECT_EQ(again.id, request.id);
  EXPECT_EQ(again.method, request.method);
  EXPECT_EQ(again.to_json(), request.to_json());
}

TEST(Protocol, UnknownMethodParsesSoTheServiceCanAnswerIt) {
  const Request request = make_request(R"({"id": 1, "method": "frobnicate"})");
  EXPECT_EQ(request.method, Method::kUnknown);
  EXPECT_EQ(request.method_name, "frobnicate");
}

TEST(Protocol, MalformedRequestsFailWithBadRequest) {
  for (const char* text : {
           "",                                  // not JSON
           "[]",                                // not an object
           R"({"method": "ping"})",             // missing id
           R"({"id": "x", "method": "ping"})",  // id not a number
           R"({"id": 1})",                      // missing method
           R"({"id": 1, "method": 3})",         // method not a string
           R"({"id": 1, "method": "ping", "params": 4})",  // params scalar
       }) {
    const auto parsed = parse_request(text);
    ASSERT_FALSE(parsed.has_value()) << "accepted: " << text;
    EXPECT_EQ(parsed.error().code, "bad_request") << text;
  }
}

TEST(Protocol, ResponseRoundTripsBothShapes) {
  obs::json::Object result;
  result.emplace("wavelengths", 12.0);
  const Response ok = Response::success(3, 9, std::move(result));
  const auto ok_again = parse_response(ok.to_json());
  ASSERT_TRUE(ok_again.has_value());
  EXPECT_TRUE(ok_again.value().ok);
  EXPECT_EQ(ok_again.value().id, 3u);
  EXPECT_EQ(ok_again.value().version, 9u);
  EXPECT_EQ(ok_again.value().to_json(), ok.to_json());

  const Response bad = Response::failure(4, 9, "no_plan", "plan first");
  const auto bad_again = parse_response(bad.to_json());
  ASSERT_TRUE(bad_again.has_value());
  EXPECT_FALSE(bad_again.value().ok);
  EXPECT_EQ(bad_again.value().error_code, "no_plan");
  EXPECT_EQ(bad_again.value().error_message, "plan first");
  EXPECT_EQ(bad_again.value().to_json(), bad.to_json());
}

TEST(Protocol, MethodClassification) {
  for (const Method read : {Method::kPing, Method::kQueryPlan,
                            Method::kAvailability, Method::kDrill,
                            Method::kUnknown}) {
    EXPECT_FALSE(is_mutation(read)) << method_name(read);
  }
  for (const Method write : {Method::kPlan, Method::kExtend, Method::kRestore,
                             Method::kDefrag, Method::kDeploy}) {
    EXPECT_TRUE(is_mutation(write)) << method_name(write);
  }
  EXPECT_TRUE(methods_coalesce(Method::kExtend, Method::kExtend));
  EXPECT_TRUE(methods_coalesce(Method::kRestore, Method::kRestore));
  EXPECT_FALSE(methods_coalesce(Method::kExtend, Method::kRestore));
  EXPECT_FALSE(methods_coalesce(Method::kPlan, Method::kPlan));
  EXPECT_FALSE(methods_coalesce(Method::kDefrag, Method::kDefrag));
  EXPECT_FALSE(methods_coalesce(Method::kDeploy, Method::kDeploy));
}

TEST(Protocol, FramingRoundTripsAndEofIsClean) {
  std::stringstream stream;
  write_frame(stream, "hello");
  write_frame(stream, "");
  const auto first = read_frame(stream);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first.value().has_value());
  EXPECT_EQ(*first.value(), "hello");
  const auto second = read_frame(stream);
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(second.value().has_value());
  EXPECT_EQ(*second.value(), "");
  const auto eof = read_frame(stream);
  ASSERT_TRUE(eof.has_value());
  EXPECT_FALSE(eof.value().has_value());  // clean EOF, not an error
}

TEST(Protocol, FramingRejectsMalformedAndTruncatedFrames) {
  for (const char* text : {
           "abc\nxyz",           // non-numeric prefix
           "5\nab",              // truncated payload
           "5",                  // EOF inside the prefix
           "999999999999999\n",  // over kMaxFrameBytes
       }) {
    std::stringstream stream(text);
    const auto framed = read_frame(stream);
    ASSERT_FALSE(framed.has_value()) << "accepted: " << text;
    EXPECT_EQ(framed.error().code, "bad_frame") << text;
  }
}

// --- service basics ---------------------------------------------------------

TEST(Service, PingReportsStateBeforeAndAfterPlan) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  EXPECT_EQ(service->state_version(), 0u);
  EXPECT_EQ(service->plan_snapshot(), nullptr);

  const Response before =
      service->execute(make_request(R"({"id": 1, "method": "ping"})"));
  EXPECT_EQ(before.version, 0u);
  EXPECT_FALSE(result_bool(before, "has_plan"));

  const Response planned =
      service->execute(make_request(R"({"id": 2, "method": "plan"})"));
  ASSERT_TRUE(planned.ok) << planned.error_message;
  EXPECT_EQ(planned.version, 1u);
  EXPECT_GT(result_number(planned, "wavelengths"), 0.0);
  ASSERT_NE(service->plan_snapshot(), nullptr);

  const Response after =
      service->execute(make_request(R"({"id": 3, "method": "ping"})"));
  EXPECT_EQ(after.version, 1u);
  EXPECT_TRUE(result_bool(after, "has_plan"));
}

TEST(Service, ReadsAndMutationsNeedAPlanFirst) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  for (const char* method : {"query_plan", "availability", "extend",
                             "restore", "defrag", "deploy"}) {
    const Response response = service->execute(make_request(
        std::string(R"({"id": 1, "method": ")") + method + "\"}"));
    EXPECT_FALSE(response.ok) << method;
    EXPECT_EQ(response.error_code, "no_plan") << method;
  }
  // Failed mutations never bump the version or dirty the commit log's
  // applied set.
  EXPECT_EQ(service->state_version(), 0u);
  for (const auto& commit : service->commit_log()) {
    EXPECT_TRUE(commit.request_ids.empty());
  }
}

TEST(Service, UnknownMethodAndBadParamsAreErrors) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  ASSERT_TRUE(
      service->execute(make_request(R"({"id": 1, "method": "plan"})")).ok);

  const Response unknown =
      service->execute(make_request(R"({"id": 2, "method": "frobnicate"})"));
  EXPECT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.error_code, "method_not_found");

  const Response no_gbps = service->execute(
      make_request(R"({"id": 3, "method": "extend", "params": {"link_id": 0}})"));
  EXPECT_FALSE(no_gbps.ok);
  EXPECT_EQ(no_gbps.error_code, "bad_request");

  const Response bad_link = service->execute(make_request(
      R"({"id": 4, "method": "extend", "params": {"link": "nope", "gbps": 100}})"));
  EXPECT_FALSE(bad_link.ok);
  EXPECT_EQ(bad_link.error_code, "unknown_link");

  const Response bad_fiber = service->execute(make_request(
      R"({"id": 5, "method": "restore", "params": {"fiber": 99999}})"));
  EXPECT_FALSE(bad_fiber.ok);
  EXPECT_EQ(bad_fiber.error_code, "unknown_fiber");

  EXPECT_EQ(service->state_version(), 1u);  // only the plan committed
}

TEST(Service, ExtendBumpsVersionAndAddsCapacity) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  ASSERT_TRUE(
      service->execute(make_request(R"({"id": 1, "method": "plan"})")).ok);
  const double wavelengths_before = result_number(
      service->execute(make_request(R"({"id": 2, "method": "query_plan"})")),
      "wavelengths");

  const Response extended = service->execute(make_request(
      R"({"id": 3, "method": "extend", "params": {"link_id": 0, "gbps": 100}})"));
  ASSERT_TRUE(extended.ok) << extended.error_message;
  EXPECT_EQ(extended.version, 2u);
  EXPECT_GE(result_number(extended, "capacity_added_gbps"), 100.0);

  const double wavelengths_after = result_number(
      service->execute(make_request(R"({"id": 4, "method": "query_plan"})")),
      "wavelengths");
  EXPECT_GT(wavelengths_after, wavelengths_before);
}

// --- batching ---------------------------------------------------------------

TEST(Service, ExecuteBatchCommitsOneWindowForCoalescibleExtends) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  ASSERT_TRUE(
      service->execute(make_request(R"({"id": 1, "method": "plan"})")).ok);

  const std::vector<Request> batch = {
      make_request(
          R"({"id": 2, "method": "extend", "params": {"link_id": 0, "gbps": 100}})"),
      make_request(
          R"({"id": 3, "method": "extend", "params": {"link_id": 1, "gbps": 100}})"),
      make_request(
          R"({"id": 4, "method": "extend", "params": {"link_id": 2, "gbps": 100}})"),
  };
  const auto responses = service->execute_batch(batch);
  ASSERT_EQ(responses.size(), 3u);
  for (const auto& response : responses) {
    EXPECT_TRUE(response.ok) << response.error_message;
    // One window -> one version: every member reports the same commit.
    EXPECT_EQ(response.version, 2u);
  }

  const auto commits = service->commit_log();
  ASSERT_EQ(commits.size(), 2u);  // plan, then the extend window
  EXPECT_EQ(commits[1].version, 2u);
  EXPECT_EQ(commits[1].method, "extend");
  EXPECT_EQ(commits[1].window_size, 3);
  EXPECT_EQ(commits[1].request_ids, (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(service->state_version(), 2u);
}

TEST(Service, BatchWithOnlyFailuresDoesNotBumpVersion) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  ASSERT_TRUE(
      service->execute(make_request(R"({"id": 1, "method": "plan"})")).ok);

  const std::vector<Request> batch = {
      make_request(
          R"({"id": 2, "method": "extend", "params": {"link": "nope", "gbps": 1}})"),
  };
  const auto responses = service->execute_batch(batch);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].version, 1u);  // unchanged
  EXPECT_EQ(service->state_version(), 1u);
  // The commit log records committed state history only: a window in which
  // nothing applied leaves no record and no version.
  const auto commits = service->commit_log();
  ASSERT_EQ(commits.size(), 1u);
  EXPECT_EQ(commits[0].method, "plan");
}

TEST(Service, BatchAnswersReadsWithNotAMutation) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  const std::vector<Request> batch = {
      make_request(R"({"id": 1, "method": "ping"})"),
  };
  const auto responses = service->execute_batch(batch);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].error_code, "not_a_mutation");
}

// --- concurrency ------------------------------------------------------------

// The tentpole invariant: N real client threads race conflicting mutations
// through execute(); the commit log must show a serialized history (dense
// monotonic versions, one record per window) and no update may be lost —
// every successful extend's capacity is present in the final plan.  TSan CI
// runs this test to pin the synchronization itself.
TEST(Service, ConcurrentConflictingExtendsSerializeWithoutLostUpdates) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  ASSERT_TRUE(
      service->execute(make_request(R"({"id": 1, "method": "plan"})")).ok);
  const double wavelengths_before = result_number(
      service->execute(make_request(R"({"id": 2, "method": "query_plan"})")),
      "wavelengths");

  // All threads extend the SAME link — the maximally conflicting schedule.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<Response> responses(kThreads * kPerThread);
  std::atomic<int> next_id{100};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int id = next_id.fetch_add(1);
        responses[t * kPerThread + i] = service->execute(make_request(
            "{\"id\": " + std::to_string(id) +
            ", \"method\": \"extend\", \"params\": {\"link_id\": 0, "
            "\"gbps\": 100}}"));
      }
    });
  }
  for (auto& client : clients) client.join();

  double added = 0.0;
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok) << response.error_message;
    added += result_number(response, "wavelengths_added");
  }
  EXPECT_GE(added, static_cast<double>(kThreads * kPerThread));

  // Serialized history: versions strictly increase by one per commit and
  // every request id appears in exactly one commit record.
  const auto commits = service->commit_log();
  std::set<std::uint64_t> applied_ids;
  for (std::size_t i = 0; i < commits.size(); ++i) {
    EXPECT_EQ(commits[i].version, i + 1);
    for (const std::uint64_t id : commits[i].request_ids) {
      EXPECT_TRUE(applied_ids.insert(id).second) << "id " << id << " twice";
    }
  }
  EXPECT_EQ(applied_ids.size(),
            static_cast<std::size_t>(kThreads * kPerThread) + 1);  // + plan
  EXPECT_EQ(service->state_version(), commits.back().version);

  // No lost updates: the final plan carries every extend's wavelengths.
  const double wavelengths_after = result_number(
      service->execute(make_request(R"({"id": 9999, "method": "query_plan"})")),
      "wavelengths");
  EXPECT_EQ(wavelengths_after - wavelengths_before, added);
  EXPECT_GE(service->max_queue_depth(), 1u);
}

// Readers race the writers above and must always observe a consistent
// snapshot: a version the commit log actually produced, never a torn state.
TEST(Service, ConcurrentReadersSeeOnlyCommittedVersions) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  ASSERT_TRUE(
      service->execute(make_request(R"({"id": 1, "method": "plan"})")).ok);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> max_seen{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      // do-while: every reader completes at least one read even if the
      // writer finishes before this thread is scheduled.
      do {
        const Response response = service->execute(
            make_request(R"({"id": 7, "method": "query_plan"})"));
        ASSERT_TRUE(response.ok);
        std::uint64_t seen = max_seen.load();
        while (seen < response.version &&
               !max_seen.compare_exchange_weak(seen, response.version)) {
        }
      } while (!stop.load());
    });
  }
  for (int i = 0; i < 8; ++i) {
    const Response response = service->execute(make_request(
        "{\"id\": " + std::to_string(100 + i) +
        ", \"method\": \"extend\", \"params\": {\"link_id\": 1, "
        "\"gbps\": 100}}"));
    ASSERT_TRUE(response.ok) << response.error_message;
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();

  // Reads observed versions only from the committed range.
  EXPECT_LE(max_seen.load(), service->state_version());
  EXPECT_GE(max_seen.load(), 1u);
}

// --- replay determinism -----------------------------------------------------

constexpr const char* kReplayScript = R"(# mixed read/write workload
{"id": 1, "method": "ping"}
{"id": 2, "method": "plan"}
{"id": 3, "method": "query_plan"}
{"id": 4, "method": "extend", "params": {"link_id": 0, "gbps": 100}}
{"id": 5, "method": "extend", "params": {"link_id": 1, "gbps": 200}}

{"id": 6, "method": "drill", "params": {"fibers": [0, 1, 2]}}
{"id": 7, "method": "restore", "params": {"fiber": 1}}
{"id": 8, "method": "defrag"}
{"id": 9, "method": "availability"}
{"id": 10, "method": "query_plan"}
)";

TEST(Replay, ScriptParsingSkipsCommentsAndNamesBadLines) {
  const auto requests = parse_script(kReplayScript);
  ASSERT_TRUE(requests.has_value()) << requests.error().message;
  EXPECT_EQ(requests.value().size(), 10u);  // comment + blank line skipped

  const auto bad = parse_script("{\"id\": 1, \"method\": \"ping\"}\nnope\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, "bad_script");
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos)
      << bad.error().message;
}

TEST(Replay, ByteIdenticalResponsesAndPlanAcrossThreadCounts) {
  const auto requests = parse_script(kReplayScript);
  ASSERT_TRUE(requests.has_value());

  std::string responses[2];
  std::string plans[2];
  std::size_t windows[2] = {0, 0};
  const int thread_counts[2] = {1, 8};
  for (int run = 0; run < 2; ++run) {
    const engine::Engine engine(thread_counts[run]);
    auto service = make_service(engine);
    const ScriptResult result = run_script(*service, requests.value());
    responses[run] = result.to_jsonl();
    windows[run] = result.windows;
    ASSERT_NE(service->plan_snapshot(), nullptr);
    plans[run] = planning::save_plan(*service->plan_snapshot());
  }
  EXPECT_EQ(responses[0], responses[1]);
  EXPECT_EQ(plans[0], plans[1]);
  EXPECT_EQ(windows[0], windows[1]);
}

TEST(Replay, CoalescesAdjacentExtendRunsIntoOneWindow) {
  const auto requests = parse_script(kReplayScript);
  ASSERT_TRUE(requests.has_value());
  const engine::Engine engine(1);
  auto service = make_service(engine);
  const ScriptResult result = run_script(*service, requests.value());

  EXPECT_EQ(result.read_count, 5u);
  EXPECT_EQ(result.mutation_count, 5u);
  EXPECT_EQ(result.windows, 4u);  // plan | extend+extend | restore | defrag
  const auto commits = service->commit_log();
  ASSERT_EQ(commits.size(), 4u);
  EXPECT_EQ(commits[0].method, "plan");
  EXPECT_EQ(commits[1].method, "extend");
  EXPECT_EQ(commits[1].window_size, 2);  // ids 4 and 5 share the window
  EXPECT_EQ(commits[2].method, "restore");
  EXPECT_EQ(commits[3].method, "defrag");
  ASSERT_EQ(result.responses.size(), 10u);
  // Both coalesced extends report the window's single version.
  EXPECT_EQ(result.responses[3].version, result.responses[4].version);
}

// --- deploy audit -----------------------------------------------------------

TEST(Service, DeployCentralizedIsCleanDistributedReportsConflicts) {
  const engine::Engine engine(1);
  auto service = make_service(engine);
  ASSERT_TRUE(
      service->execute(make_request(R"({"id": 1, "method": "plan"})")).ok);

  const Response centralized = service->execute(make_request(
      R"({"id": 2, "method": "deploy", "params": {"controller": "centralized"}})"));
  ASSERT_TRUE(centralized.ok) << centralized.error_message;
  EXPECT_TRUE(result_bool(centralized, "audit_clean"));
  EXPECT_EQ(result_number(centralized, "audit_conflicts"), 0.0);

  const Response distributed = service->execute(make_request(
      R"({"id": 3, "method": "deploy", "params": {"controller": "distributed"}})"));
  ASSERT_TRUE(distributed.ok) << distributed.error_message;
  EXPECT_FALSE(result_bool(distributed, "audit_clean"));
  EXPECT_GT(result_number(distributed, "audit_conflicts"), 0.0);
  EXPECT_GT(result_number(distributed, "grid_clipped_passbands"), 0.0);

  const Response bogus = service->execute(make_request(
      R"({"id": 4, "method": "deploy", "params": {"controller": "anarchic"}})"));
  EXPECT_FALSE(bogus.ok);
  EXPECT_EQ(bogus.error_code, "bad_request");
}

}  // namespace
}  // namespace flexwan::server
