// Tests for the lifecycle simulator (src/sim): seed schedule, timeline
// structure, trial physics, and the thread-count determinism contract.
#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "planning/heuristic.h"
#include "sim/events.h"
#include "sim/simulator.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::sim {
namespace {

// Serializes every field of a report with hexfloat doubles: two reports with
// equal fingerprints are byte-identical in the sense the determinism
// contract promises.
std::string fingerprint(const LifecycleReport& report) {
  std::ostringstream os;
  os << std::hexfloat;
  os << report.mean_availability << '|' << report.min_availability << '|'
     << report.mean_lost_gbps_minutes << '|' << report.mean_capability << '|'
     << report.total_cuts << '|' << report.total_repairs << '|'
     << report.total_growth_events << '\n';
  for (const auto& [link, minutes] : report.mean_link_downtime_minutes) {
    os << link << '=' << minutes << ';';
  }
  os << '\n';
  for (const auto& t : report.trials) {
    os << t.trial << '|' << t.availability << '|' << t.lost_gbps_minutes
       << '|' << t.offered_gbps_minutes << '|' << t.cuts << '|' << t.repairs
       << '|' << t.growth_events << '|' << t.restorations << '|'
       << t.growth_blocked << '|' << t.capacity_added_gbps << '|'
       << t.mean_capability << '|' << t.min_capability << '|'
       << t.final_provisioned_gbps << '\n';
    for (const auto& s : t.capability_trajectory) {
      os << s.time_days << '@' << s.capability << ';';
    }
    os << '\n';
    for (const auto& [link, minutes] : t.link_downtime_minutes) {
      os << link << '=' << minutes << ';';
    }
    os << '\n';
  }
  return os.str();
}

TEST(Events, MixSeedIsDeterministicAndSeparatesStreams) {
  EXPECT_EQ(mix_seed(42, 0), mix_seed(42, 0));
  EXPECT_NE(mix_seed(42, 0), mix_seed(42, 1));
  EXPECT_NE(mix_seed(42, 0), mix_seed(43, 0));
  // Stream 0 must be usable (the +1 inside keeps it distinct from the seed).
  EXPECT_NE(mix_seed(0, 0), 0u);
}

TEST(Events, OrderBreaksTiesRepairCutGrowthThenFiber) {
  const Event repair{5.0, EventType::kRepair, 2};
  const Event cut{5.0, EventType::kCut, 1};
  const Event growth{5.0, EventType::kGrowth, -1};
  const Event earlier{4.0, EventType::kGrowth, -1};
  EXPECT_TRUE(event_order(earlier, repair));
  EXPECT_TRUE(event_order(repair, cut));
  EXPECT_TRUE(event_order(cut, growth));
  EXPECT_FALSE(event_order(growth, repair));
  const Event cut_low{5.0, EventType::kCut, 0};
  EXPECT_TRUE(event_order(cut_low, cut));
  EXPECT_FALSE(event_order(cut, cut));  // irreflexive
}

TEST(Events, TimelineIsDeterministicSortedAndAlternatesPerFiber) {
  const auto net = topology::make_tbackbone();
  TimelineConfig config;
  config.horizon_days = 3 * 365.0;
  config.cut_rate_per_1000km_per_year = 4.0;
  const auto a = build_timeline(net.optical, config, mix_seed(7, 0));
  const auto b = build_timeline(net.optical, config, mix_seed(7, 0));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_days, b[i].time_days);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].fiber, b[i].fiber);
  }
  const auto other = build_timeline(net.optical, config, mix_seed(7, 1));
  const bool differs =
      a.size() != other.size() ||
      !std::equal(a.begin(), a.end(), other.begin(),
                  [](const Event& x, const Event& y) {
                    return x.time_days == y.time_days && x.type == y.type &&
                           x.fiber == y.fiber;
                  });
  EXPECT_TRUE(differs) << "different trial seeds produced the same timeline";

  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), event_order));
  EXPECT_FALSE(a.empty());

  // Per fiber: strict cut -> repair alternation starting with a cut, and a
  // fiber with a trailing unrepaired cut simply ends its stream.
  std::map<topology::FiberId, EventType> last;
  int growth_events = 0;
  for (const auto& ev : a) {
    EXPECT_GE(ev.time_days, 0.0);
    EXPECT_LT(ev.time_days, config.horizon_days);
    if (ev.type == EventType::kGrowth) {
      ++growth_events;
      EXPECT_EQ(ev.fiber, -1);
      continue;
    }
    ASSERT_GE(ev.fiber, 0);
    const auto it = last.find(ev.fiber);
    if (ev.type == EventType::kCut) {
      EXPECT_TRUE(it == last.end() || it->second == EventType::kRepair)
          << "fiber " << ev.fiber << " cut while already down";
    } else {
      ASSERT_TRUE(it != last.end() && it->second == EventType::kCut)
          << "fiber " << ev.fiber << " repaired while up";
    }
    last[ev.fiber] = ev.type;
  }
  // growth_interval_days = 90 over 3 years: 90, 180, ..., < 1095.
  EXPECT_EQ(growth_events, 12);
}

TEST(Events, ZeroRateAndZeroHorizonProduceNoFailures) {
  const auto net = topology::make_tbackbone();
  TimelineConfig config;
  config.cut_rate_per_1000km_per_year = 0.0;
  const auto quiet = build_timeline(net.optical, config, 1);
  for (const auto& ev : quiet) EXPECT_EQ(ev.type, EventType::kGrowth);
  config.horizon_days = 0.0;
  EXPECT_TRUE(build_timeline(net.optical, config, 1).empty());
}

TEST(Simulator, ZeroCutRateTrialHasPerfectAvailability) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  LifecycleConfig config;
  config.timeline.cut_rate_per_1000km_per_year = 0.0;
  config.timeline.growth_interval_days = 0.0;  // quiet year
  const auto trial =
      run_trial(net, *plan, transponder::svt_flexwan(), config, 0);
  ASSERT_TRUE(trial) << trial.error().message;
  EXPECT_EQ(trial->cuts, 0);
  EXPECT_EQ(trial->repairs, 0);
  EXPECT_EQ(trial->growth_events, 0);
  EXPECT_EQ(trial->restorations, 0);
  EXPECT_DOUBLE_EQ(trial->availability, 1.0);
  EXPECT_DOUBLE_EQ(trial->lost_gbps_minutes, 0.0);
  EXPECT_GT(trial->offered_gbps_minutes, 0.0);
  EXPECT_TRUE(trial->capability_trajectory.empty());
  EXPECT_TRUE(trial->link_downtime_minutes.empty());
}

TEST(Simulator, GrowthAddsCapacityOrCountsBlockedExtensions) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  double deployed = 0.0;
  for (const auto& lp : plan->links()) deployed += lp.provisioned_gbps();

  LifecycleConfig config;
  config.timeline.cut_rate_per_1000km_per_year = 0.0;
  config.timeline.growth_interval_days = 120.0;  // 120, 240, 360
  config.growth_fraction = 0.05;
  const auto trial =
      run_trial(net, *plan, transponder::svt_flexwan(), config, 0);
  ASSERT_TRUE(trial) << trial.error().message;
  EXPECT_EQ(trial->growth_events, 3);
  // Every attempted extension either provisioned capacity or was counted as
  // blocked; the deployed plan never shrinks.
  EXPECT_TRUE(trial->capacity_added_gbps > 0.0 || trial->growth_blocked > 0);
  EXPECT_GE(trial->final_provisioned_gbps, deployed);
  EXPECT_NEAR(trial->final_provisioned_gbps,
              deployed + trial->capacity_added_gbps, 1e-6);
  EXPECT_DOUBLE_EQ(trial->availability, 1.0);
}

TEST(Simulator, EventfulTrialStaysConsistent) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  LifecycleConfig config;
  config.timeline.horizon_days = 2 * 365.0;
  config.timeline.cut_rate_per_1000km_per_year = 25.0;  // overlapping cuts
  config.timeline.mttr_mean_hours = 72.0;
  config.seed = 3;
  const auto trial =
      run_trial(net, *plan, transponder::svt_flexwan(), config, 0);
  ASSERT_TRUE(trial) << trial.error().message;
  EXPECT_GT(trial->cuts, 0);
  EXPECT_GE(trial->cuts, trial->repairs);
  EXPECT_GE(trial->restorations, trial->cuts);
  EXPECT_GE(trial->availability, 0.0);
  EXPECT_LE(trial->availability, 1.0);
  EXPECT_FALSE(trial->capability_trajectory.empty());
  EXPECT_LE(trial->min_capability, trial->mean_capability);
  EXPECT_LE(trial->mean_capability, 1.0);
  EXPECT_NEAR(trial->availability,
              1.0 - trial->lost_gbps_minutes / trial->offered_gbps_minutes,
              1e-12);
}

TEST(Simulator, LifecycleIsByteIdenticalAcrossThreadCounts) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  LifecycleConfig config;
  config.timeline.cut_rate_per_1000km_per_year = 6.0;
  config.timeline.mttr_mean_hours = 36.0;
  config.trials = 6;
  config.seed = 17;
  const auto serial = run_lifecycle(net, *plan, transponder::svt_flexwan(),
                                    config, engine::Engine(1));
  const auto threaded = run_lifecycle(net, *plan, transponder::svt_flexwan(),
                                      config, engine::Engine(8));
  ASSERT_TRUE(serial) << serial.error().message;
  ASSERT_TRUE(threaded) << threaded.error().message;
  ASSERT_EQ(serial->trials.size(), 6u);
  EXPECT_GT(serial->total_cuts, 0);
  EXPECT_EQ(fingerprint(*serial), fingerprint(*threaded));
}

TEST(Simulator, ReportAggregatesTrialsInIndexOrder) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  LifecycleConfig config;
  config.timeline.cut_rate_per_1000km_per_year = 4.0;
  config.trials = 3;
  config.seed = 9;
  const auto report = run_lifecycle(net, *plan, transponder::svt_flexwan(),
                                    config, engine::Engine(4));
  ASSERT_TRUE(report) << report.error().message;
  ASSERT_EQ(report->trials.size(), 3u);
  double availability_sum = 0.0;
  int cuts = 0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(report->trials[i].trial, i);
    availability_sum += report->trials[i].availability;
    cuts += report->trials[i].cuts;
    // Each aggregated trial matches an independent serial re-run.
    const auto solo =
        run_trial(net, *plan, transponder::svt_flexwan(), config, i);
    ASSERT_TRUE(solo);
    EXPECT_EQ(solo->availability, report->trials[i].availability);
    EXPECT_EQ(solo->cuts, report->trials[i].cuts);
  }
  EXPECT_DOUBLE_EQ(report->mean_availability, availability_sum / 3.0);
  EXPECT_EQ(report->total_cuts, cuts);
  EXPECT_LE(report->min_availability, report->mean_availability);
}

}  // namespace
}  // namespace flexwan::sim
