// Unit and property tests for the spectrum grid and occupancy model.
#include <gtest/gtest.h>

#include "spectrum/grid.h"
#include "spectrum/occupancy.h"
#include "util/rng.h"

namespace flexwan::spectrum {
namespace {

TEST(Grid, PixelsForSpacingExactMultiples) {
  EXPECT_EQ(pixels_for_spacing(12.5), 1);
  EXPECT_EQ(pixels_for_spacing(50.0), 4);
  EXPECT_EQ(pixels_for_spacing(62.5), 5);
  EXPECT_EQ(pixels_for_spacing(75.0), 6);
  EXPECT_EQ(pixels_for_spacing(87.5), 7);
  EXPECT_EQ(pixels_for_spacing(100.0), 8);
  EXPECT_EQ(pixels_for_spacing(112.5), 9);
  EXPECT_EQ(pixels_for_spacing(125.0), 10);
  EXPECT_EQ(pixels_for_spacing(137.5), 11);
  EXPECT_EQ(pixels_for_spacing(150.0), 12);
}

TEST(Grid, PixelsForSpacingRoundsUpNonMultiples) {
  EXPECT_EQ(pixels_for_spacing(13.0), 2);
  EXPECT_EQ(pixels_for_spacing(76.0), 7);
}

TEST(Grid, PixelsForSpacingZeroAndNegative) {
  EXPECT_EQ(pixels_for_spacing(0.0), 0);
  EXPECT_EQ(pixels_for_spacing(-50.0), 0);
}

TEST(Grid, SpacingForPixelsInvertsExactMultiples) {
  for (int p = 1; p <= 12; ++p) {
    EXPECT_EQ(pixels_for_spacing(spacing_for_pixels(p)), p);
  }
}

TEST(Grid, CBandHas384Pixels) {
  EXPECT_EQ(kCBandPixels, 384);
  EXPECT_DOUBLE_EQ(kCBandPixels * kPixelWidthGhz, kCBandWidthGhz);
}

TEST(Range, BasicAlgebra) {
  const Range r{4, 6};
  EXPECT_EQ(r.end(), 10);
  EXPECT_DOUBLE_EQ(r.width_ghz(), 75.0);
  EXPECT_TRUE(r.valid());
  EXPECT_TRUE(r.contains(4));
  EXPECT_TRUE(r.contains(9));
  EXPECT_FALSE(r.contains(10));
  EXPECT_FALSE(r.contains(3));
}

TEST(Range, Validity) {
  EXPECT_FALSE((Range{-1, 4}.valid()));
  EXPECT_FALSE((Range{0, 0}.valid()));
  EXPECT_FALSE((Range{380, 8}.valid()));
  EXPECT_TRUE((Range{380, 4}.valid()));
}

TEST(Range, OverlapIsSymmetricAndExcludesTouching) {
  const Range a{0, 4};
  const Range b{4, 4};
  const Range c{2, 4};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(a));
  EXPECT_TRUE(b.overlaps(c));
}

TEST(Range, Covers) {
  const Range outer{4, 8};
  EXPECT_TRUE(outer.covers(Range{4, 8}));
  EXPECT_TRUE(outer.covers(Range{6, 2}));
  EXPECT_FALSE(outer.covers(Range{3, 4}));
  EXPECT_FALSE(outer.covers(Range{10, 4}));
}

TEST(Occupancy, StartsAllFree) {
  Occupancy occ;
  EXPECT_EQ(occ.pixels(), kCBandPixels);
  EXPECT_EQ(occ.used_pixels(), 0);
  EXPECT_EQ(occ.free_pixels(), kCBandPixels);
  EXPECT_EQ(occ.largest_free_run(), kCBandPixels);
  EXPECT_DOUBLE_EQ(occ.fragmentation(), 0.0);
}

TEST(Occupancy, ReserveThenConflict) {
  Occupancy occ(48);
  ASSERT_TRUE(occ.reserve(Range{0, 6}));
  EXPECT_EQ(occ.used_pixels(), 6);
  const auto again = occ.reserve(Range{4, 6});
  ASSERT_FALSE(again);
  EXPECT_EQ(again.error().code, "conflict");
  // A failed reserve must not partially apply.
  EXPECT_EQ(occ.used_pixels(), 6);
  EXPECT_TRUE(occ.is_free(Range{6, 4}));
}

TEST(Occupancy, ReserveOutOfBand) {
  Occupancy occ(48);
  const auto r = occ.reserve(Range{44, 6});
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "out_of_band");
}

TEST(Occupancy, ReleaseMirrorsReserve) {
  Occupancy occ(48);
  ASSERT_TRUE(occ.reserve(Range{10, 8}));
  ASSERT_TRUE(occ.release(Range{10, 8}));
  EXPECT_EQ(occ.used_pixels(), 0);
}

TEST(Occupancy, ReleaseFreePixelsFails) {
  Occupancy occ(48);
  ASSERT_TRUE(occ.reserve(Range{10, 4}));
  const auto r = occ.release(Range{10, 8});  // tail 4 pixels are free
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, "not_reserved");
  // Atomic: the reserved pixels stay reserved.
  EXPECT_EQ(occ.used_pixels(), 4);
}

TEST(Occupancy, FirstFitFindsLowestStart) {
  Occupancy occ(48);
  ASSERT_TRUE(occ.reserve(Range{0, 6}));
  ASSERT_TRUE(occ.reserve(Range{10, 6}));
  const auto fit = occ.first_fit(4);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->first, 6);
  EXPECT_EQ(fit->count, 4);
}

TEST(Occupancy, FirstFitRespectsFrom) {
  Occupancy occ(48);
  const auto fit = occ.first_fit(4, 20);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->first, 20);
}

TEST(Occupancy, FirstFitFailsWhenFull) {
  Occupancy occ(12);
  ASSERT_TRUE(occ.reserve(Range{0, 12}));
  EXPECT_FALSE(occ.first_fit(1).has_value());
}

TEST(Occupancy, FirstFitSkipsTooSmallGaps) {
  Occupancy occ(24);
  ASSERT_TRUE(occ.reserve(Range{4, 4}));   // gap [0,4) too small for 6
  ASSERT_TRUE(occ.reserve(Range{12, 4}));  // gap [8,12) too small for 6
  const auto fit = occ.first_fit(6);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->first, 16);
}

TEST(Occupancy, AllFitsEnumeratesEveryStart) {
  Occupancy occ(12);
  ASSERT_TRUE(occ.reserve(Range{4, 4}));
  const auto starts = occ.all_fits(4);
  EXPECT_EQ(starts, (std::vector<int>{0, 8}));
}

// --- 64-bit word-boundary coverage for the packed-word storage -----------
// Occupancy packs the grid into uint64_t words; every scan must behave
// identically whether a run sits inside one word, straddles the 64-pixel
// edge, or spans whole words.

TEST(Occupancy, FirstFitFindsRunSpanningWordBoundary) {
  Occupancy occ(128);
  // Free gap [60, 68): 4 pixels in word 0, 4 in word 1.
  ASSERT_TRUE(occ.reserve(Range{0, 60}));
  ASSERT_TRUE(occ.reserve(Range{68, 60}));
  const auto fit = occ.first_fit(8);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->first, 60);
  EXPECT_EQ(fit->count, 8);
  EXPECT_FALSE(occ.first_fit(9).has_value());
  EXPECT_EQ(occ.largest_free_run(), 8);
}

TEST(Occupancy, FirstFitRunEndingExactlyAtWordBoundary) {
  Occupancy occ(128);
  ASSERT_TRUE(occ.reserve(Range{0, 56}));
  ASSERT_TRUE(occ.reserve(Range{64, 64}));  // word 1 fully used
  const auto fit = occ.first_fit(8);        // free run is exactly [56, 64)
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->first, 56);
  EXPECT_FALSE(occ.first_fit(9).has_value());
}

TEST(Occupancy, FirstFitFromOffsetInsideWord) {
  Occupancy occ(192);
  ASSERT_TRUE(occ.reserve(Range{70, 10}));
  // from inside word 1, past the start of its free prefix.
  const auto fit = occ.first_fit(4, 67);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->first, 80);  // [67, 70) is only 3 free pixels
  // from exactly on a word boundary.
  const auto at_boundary = occ.first_fit(4, 64);
  ASSERT_TRUE(at_boundary.has_value());
  EXPECT_EQ(at_boundary->first, 64);
  // from in the middle of a free whole word.
  const auto mid_word = occ.first_fit(4, 100);
  ASSERT_TRUE(mid_word.has_value());
  EXPECT_EQ(mid_word->first, 100);
}

TEST(Occupancy, FirstFitFromPastBandAndNegative) {
  Occupancy occ(128);
  EXPECT_FALSE(occ.first_fit(1, 128).has_value());
  EXPECT_FALSE(occ.first_fit(1, 4096).has_value());
  // A negative from clamps to the band start.
  const auto fit = occ.first_fit(4, -7);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->first, 0);
  EXPECT_FALSE(occ.first_fit(0).has_value());
  EXPECT_FALSE(occ.first_fit(-3).has_value());
}

TEST(Occupancy, FullGridAndEmptyGridExtremes) {
  Occupancy occ(kCBandPixels);
  // Empty grid: the whole band is one run, in every view.
  EXPECT_EQ(occ.largest_free_run(), kCBandPixels);
  const auto whole = occ.first_fit(kCBandPixels);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->first, 0);
  EXPECT_FALSE(occ.first_fit(kCBandPixels + 1).has_value());
  // Full grid (384 = 6 words exactly): nothing fits, nothing is free.
  ASSERT_TRUE(occ.reserve(Range{0, kCBandPixels}));
  EXPECT_EQ(occ.used_pixels(), kCBandPixels);
  EXPECT_EQ(occ.largest_free_run(), 0);
  EXPECT_FALSE(occ.first_fit(1).has_value());
  EXPECT_TRUE(occ.all_fits(1).empty());
  ASSERT_TRUE(occ.release(Range{0, kCBandPixels}));
  EXPECT_EQ(occ.used_pixels(), 0);
}

TEST(Occupancy, AllFitsAcrossWordBoundaries) {
  Occupancy occ(128);
  ASSERT_TRUE(occ.reserve(Range{0, 58}));
  ASSERT_TRUE(occ.reserve(Range{70, 50}));
  // Free: [58, 70) crossing the 64-edge, and [120, 128) at the band tail.
  EXPECT_EQ(occ.all_fits(8), (std::vector<int>{58, 59, 60, 61, 62, 120}));
  EXPECT_EQ(occ.all_fits(12), (std::vector<int>{58}));
  EXPECT_TRUE(occ.all_fits(13).empty());
}

TEST(Occupancy, NonMultipleOf64BandKeepsTailUnavailable) {
  // 100 pixels: the last word is partial; the 28 tail bits must never be
  // offered by any scan.
  Occupancy occ(100);
  EXPECT_EQ(occ.free_pixels(), 100);
  const auto fit = occ.first_fit(100);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->first, 0);
  EXPECT_FALSE(occ.first_fit(101).has_value());
  ASSERT_TRUE(occ.reserve(Range{0, 96}));
  const auto tail = occ.first_fit(4);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->first, 96);
  EXPECT_EQ(occ.all_fits(4), (std::vector<int>{96}));
  EXPECT_FALSE(occ.first_fit(5).has_value());
}

TEST(Occupancy, ReserveReleaseStraddlingWordBoundary) {
  Occupancy occ(192);
  ASSERT_TRUE(occ.reserve(Range{62, 68}));  // covers words 0, 1, and 2
  EXPECT_EQ(occ.used_pixels(), 68);
  EXPECT_FALSE(occ.is_free(Range{63, 1}));
  EXPECT_FALSE(occ.is_free(Range{64, 1}));
  EXPECT_FALSE(occ.is_free(Range{129, 1}));
  EXPECT_TRUE(occ.is_free(Range{61, 1}));
  EXPECT_TRUE(occ.is_free(Range{130, 1}));
  ASSERT_TRUE(occ.release(Range{62, 68}));
  EXPECT_EQ(occ.used_pixels(), 0);
  EXPECT_EQ(occ.largest_free_run(), 192);
}

TEST(Occupancy, FragmentationReflectsSplitSpectrum) {
  Occupancy occ(48);
  ASSERT_TRUE(occ.reserve(Range{20, 8}));  // splits free space 20 + 20
  EXPECT_EQ(occ.largest_free_run(), 20);
  EXPECT_NEAR(occ.fragmentation(), 0.5, 1e-9);
}

TEST(Occupancy, FragmentationZeroWhenFull) {
  Occupancy occ(12);
  ASSERT_TRUE(occ.reserve(Range{0, 12}));
  EXPECT_DOUBLE_EQ(occ.fragmentation(), 0.0);
}

// Property: a random sequence of reserve/release operations never corrupts
// the pixel accounting, and first_fit always returns genuinely free ranges.
class OccupancyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OccupancyPropertyTest, RandomReserveReleaseKeepsInvariants) {
  Rng rng(GetParam());
  Occupancy occ(96);
  std::vector<Range> held;
  int expected_used = 0;
  for (int step = 0; step < 400; ++step) {
    if (held.empty() || rng.chance(0.6)) {
      const int count = rng.uniform_int(1, 12);
      const auto fit = occ.first_fit(count);
      if (!fit) continue;
      ASSERT_TRUE(occ.is_free(*fit));
      ASSERT_TRUE(occ.reserve(*fit));
      held.push_back(*fit);
      expected_used += count;
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(held.size()) - 1));
      ASSERT_TRUE(occ.release(held[idx]));
      expected_used -= held[idx].count;
      held.erase(held.begin() + static_cast<long>(idx));
    }
    ASSERT_EQ(occ.used_pixels(), expected_used);
    ASSERT_EQ(occ.free_pixels(), 96 - expected_used);
    ASSERT_LE(occ.largest_free_run(), occ.free_pixels());
  }
  // Releasing everything restores a pristine band.
  for (const auto& r : held) ASSERT_TRUE(occ.release(r));
  EXPECT_EQ(occ.used_pixels(), 0);
  EXPECT_EQ(occ.largest_free_run(), 96);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OccupancyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: reserved ranges held simultaneously never overlap.
class OccupancyDisjointTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OccupancyDisjointTest, HeldRangesAreDisjoint) {
  Rng rng(GetParam());
  Occupancy occ(64);
  std::vector<Range> held;
  for (int step = 0; step < 64; ++step) {
    const int count = rng.uniform_int(2, 10);
    const auto fit = occ.first_fit(count, rng.uniform_int(0, 50));
    if (!fit) break;
    ASSERT_TRUE(occ.reserve(*fit));
    for (const auto& other : held) {
      ASSERT_FALSE(fit->overlaps(other))
          << to_string(*fit) << " vs " << to_string(other);
    }
    held.push_back(*fit);
  }
  EXPECT_FALSE(held.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OccupancyDisjointTest,
                         ::testing::Values(7, 11, 19, 23));

TEST(FreeBlockStats, FullyFreeBandIsOneRun) {
  Occupancy occ(200);
  const auto stats = occ.free_block_stats();
  EXPECT_EQ(stats.count, 1);
  EXPECT_EQ(stats.largest, 200);
  EXPECT_EQ(stats.free_pixels, 200);
}

TEST(FreeBlockStats, FullBandHasNoRuns) {
  Occupancy occ(128);
  ASSERT_TRUE(occ.reserve({0, 128}));
  const auto stats = occ.free_block_stats();
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.largest, 0);
  EXPECT_EQ(stats.free_pixels, 0);
}

TEST(FreeBlockStats, RunSpansWordBoundary) {
  // Reservation inside word 0 splits the band into a run ending before the
  // word-0/word-1 boundary and a run crossing it.
  Occupancy occ(200);
  ASSERT_TRUE(occ.reserve({60, 10}));  // used [60, 70): crosses bit 64
  const auto stats = occ.free_block_stats();
  EXPECT_EQ(stats.count, 2);
  EXPECT_EQ(stats.largest, 130);  // [70, 200)
  EXPECT_EQ(stats.free_pixels, 190);
}

TEST(FreeBlockStats, SingleFreePixelAtWordEdges) {
  // Pixel 63 (last bit of word 0) and pixel 64 (first bit of word 1) are
  // the classic off-by-one spots for a word scan.
  for (const int hole : {63, 64}) {
    Occupancy occ(128);
    ASSERT_TRUE(occ.reserve({0, hole}));
    ASSERT_TRUE(occ.reserve({hole + 1, 128 - hole - 1}));
    const auto stats = occ.free_block_stats();
    EXPECT_EQ(stats.count, 1) << "hole at " << hole;
    EXPECT_EQ(stats.largest, 1) << "hole at " << hole;
    EXPECT_EQ(stats.free_pixels, 1) << "hole at " << hole;
  }
}

TEST(FreeBlockStats, TailBitsPastPixelsDoNotCount) {
  // 70 pixels = one full word + 6 bits; the permanently-set tail bits of
  // word 1 must not clamp or extend the final run.
  Occupancy occ(70);
  ASSERT_TRUE(occ.reserve({0, 65}));
  const auto stats = occ.free_block_stats();
  EXPECT_EQ(stats.count, 1);
  EXPECT_EQ(stats.largest, 5);  // [65, 70)
  EXPECT_EQ(stats.free_pixels, 5);
}

TEST(FreeBlockStats, ZeroPixelBandIsEmpty) {
  Occupancy occ(0);
  const auto stats = occ.free_block_stats();
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.largest, 0);
  EXPECT_EQ(stats.free_pixels, 0);
}

// Property: the combined scan agrees with the independent single-purpose
// queries on arbitrary occupancy patterns.
class FreeBlockStatsPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FreeBlockStatsPropertyTest, MatchesIndependentQueries) {
  Rng rng(GetParam());
  Occupancy occ(kCBandPixels);
  for (int step = 0; step < 40; ++step) {
    const int count = rng.uniform_int(1, 16);
    const auto fit = occ.first_fit(count, rng.uniform_int(0, 300));
    if (!fit) break;
    ASSERT_TRUE(occ.reserve(*fit));
    const auto stats = occ.free_block_stats();
    EXPECT_EQ(stats.free_pixels, occ.free_pixels());
    EXPECT_EQ(stats.largest, occ.largest_free_run());
    // count is consistent with the other two: N runs summing to F pixels
    // means the largest is at least ceil(F / N).
    if (stats.count > 0) {
      EXPECT_GE(stats.largest * stats.count, stats.free_pixels);
    } else {
      EXPECT_EQ(stats.free_pixels, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FreeBlockStatsPropertyTest,
                         ::testing::Values(3, 9, 27, 81));

}  // namespace
}  // namespace flexwan::spectrum
