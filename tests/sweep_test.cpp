// Cross-product sweeps: every scheme x topology x scale combination that is
// feasible must produce a valid plan, a clean deployment, and restoration
// outcomes that respect the §8 constraints.  These are the workhorse
// regression tests for the whole pipeline.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "controller/centralized.h"
#include "controller/fleet.h"
#include "planning/heuristic.h"
#include "planning/metrics.h"
#include "restoration/metrics.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan {
namespace {

const transponder::Catalog& catalog_by_name(const std::string& name) {
  if (name == "RADWAN") return transponder::bvt_radwan();
  if (name == "100G-WAN") return transponder::fixed_grid_100g();
  return transponder::svt_flexwan();
}

topology::Network network_by_name(const std::string& name, double scale) {
  auto net = name == "Cernet" ? topology::make_cernet()
                              : topology::make_tbackbone();
  return topology::Network{net.name, net.optical, net.ip.scaled(scale)};
}

using SweepParam = std::tuple<const char*, const char*, double>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, PlanDeployRestore) {
  const auto& [scheme, topo, scale] = GetParam();
  const auto net = network_by_name(topo, scale);
  const auto& catalog = catalog_by_name(scheme);

  planning::HeuristicPlanner planner(catalog, {});
  const auto plan = planner.plan(net);
  if (!plan) {
    // Documented failure modes only — and only at elevated scale.
    EXPECT_TRUE(plan.error().code == "no_spectrum" ||
                plan.error().code == "unreachable_demand")
        << plan.error().code;
    EXPECT_GT(scale, 1.0) << scheme << " must be feasible at 1x";
    return;
  }

  // 1. Every Algorithm 1 constraint, re-checked independently.
  const auto valid = planning::validate_plan(*plan, net);
  ASSERT_TRUE(valid) << valid.error().message;

  // 2. Metrics are internally consistent.
  const auto m = planning::compute_metrics(*plan, net);
  EXPECT_EQ(m.transponder_count, plan->transponder_count());
  EXPECT_GE(m.spectrum_usage_ghz,
            m.transponder_count * 50.0);  // narrowest channel is 50 GHz
  EXPECT_LE(m.max_fiber_utilization, 1.0);

  // 3. Deployment through the centralized controller audits clean.
  controller::Fleet fleet(net, *plan,
                          controller::VendorAssignment::kPerRegionMixed,
                          true);
  controller::CentralizedController controller(net);
  const auto stats = controller.deploy(fleet);
  ASSERT_TRUE(stats) << stats.error().message;
  EXPECT_TRUE(controller::audit_fleet(fleet, net).clean());

  // 4. Restoration over a sample of cuts respects capacity and spares.
  restoration::Restorer restorer(catalog);
  for (topology::FiberId f = 0; f < net.optical.fiber_count(); f += 7) {
    const auto outcome =
        restorer.restore(net, *plan, restoration::FailureScenario{{f}, 1.0});
    EXPECT_LE(outcome.restored_gbps, outcome.affected_gbps + 1e-9);
    for (const auto& lr : outcome.links) {
      EXPECT_LE(lr.used_transponders, lr.spare_transponders);
    }
    for (const auto& rw : outcome.wavelengths) {
      EXPECT_FALSE(rw.path.uses_fiber(f));
      EXPECT_GE(rw.mode.reach_km, rw.path.length_km);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, PipelineSweep,
    ::testing::Combine(::testing::Values("100G-WAN", "RADWAN", "FlexWAN"),
                       ::testing::Values("T-backbone", "Cernet"),
                       ::testing::Values(1.0, 2.0, 4.0)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = std::get<0>(info.param);
      name += "_";
      name += std::get<1>(info.param);
      name += "_x" + std::to_string(static_cast<int>(std::get<2>(info.param)));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace flexwan
