// Tests for the traffic-engineering layer: capacity derivation from plans,
// degradation/restoration accounting, and the multi-commodity-flow LP.
#include <gtest/gtest.h>

#include "planning/heuristic.h"
#include "restoration/restorer.h"
#include "te/routing.h"
#include "te/traffic.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::te {
namespace {

using planning::HeuristicPlanner;

topology::Network ring_net(double demand_gbps = 400, double side_km = 300) {
  topology::Network net;
  net.name = "ring";
  for (int i = 0; i < 4; ++i) net.optical.add_node("n" + std::to_string(i));
  net.optical.add_fiber(0, 1, side_km);
  net.optical.add_fiber(1, 2, side_km);
  net.optical.add_fiber(2, 3, side_km);
  net.optical.add_fiber(3, 0, side_km);
  net.ip.add_link(0, 1, demand_gbps);
  net.ip.add_link(1, 2, demand_gbps);
  net.ip.add_link(2, 3, demand_gbps);
  return net;
}

planning::Plan plan_of(const topology::Network& net) {
  HeuristicPlanner planner(transponder::svt_flexwan(), {});
  auto plan = planner.plan(net);
  EXPECT_TRUE(plan);
  return std::move(plan.value());
}

TEST(Capacities, MatchProvisionedPerLink) {
  const auto net = ring_net();
  const auto plan = plan_of(net);
  const auto caps = capacities_from_plan(net, plan);
  ASSERT_EQ(caps.size(), static_cast<std::size_t>(net.ip.link_count()));
  for (const auto& cap : caps) {
    EXPECT_GE(cap.capacity_gbps, net.ip.link(cap.link).demand_gbps);
  }
}

TEST(Capacities, DegradationZeroesAffectedWavelengths) {
  const auto net = ring_net();
  const auto plan = plan_of(net);
  const restoration::FailureScenario cut{{0}, 1.0};  // kills link 0-1's path
  const auto degraded = degraded_capacities(net, plan, cut);
  // Link 0 (0-1) rides fiber 0 and loses everything; other links survive.
  EXPECT_DOUBLE_EQ(degraded[0].capacity_gbps, 0.0);
  EXPECT_GT(degraded[1].capacity_gbps, 0.0);
  EXPECT_GT(degraded[2].capacity_gbps, 0.0);
}

TEST(Capacities, RestorationCreditsRevivedCapacity) {
  const auto net = ring_net();
  const auto plan = plan_of(net);
  const restoration::FailureScenario cut{{0}, 1.0};
  restoration::Restorer restorer(transponder::svt_flexwan());
  const auto outcome = restorer.restore(net, plan, cut);
  const auto restored = restored_capacities(net, plan, cut, outcome);
  EXPECT_NEAR(restored[0].capacity_gbps,
              std::min(outcome.restored_gbps, outcome.affected_gbps), 1e-9);
}

TEST(Traffic, RandomMatrixHitsTargetLoad) {
  const auto net = ring_net();
  const auto plan = plan_of(net);
  Rng rng(5);
  const auto matrix = random_traffic(net, plan, 0.5, rng, 30);
  EXPECT_EQ(matrix.size(), 30u);
  double total_capacity = 0.0;
  for (const auto& lp : plan.links()) total_capacity += lp.provisioned_gbps();
  double volume = 0.0;
  for (const auto& f : matrix) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_GE(f.gbps, 0.0);
    volume += f.gbps;
  }
  EXPECT_NEAR(volume, 0.5 * total_capacity, 0.02 * total_capacity);
}

TEST(Routing, ServesEverythingWhenUncongested) {
  const auto net = ring_net();
  const auto plan = plan_of(net);
  const auto caps = capacities_from_plan(net, plan);
  const TrafficMatrix matrix = {{0, 1, 100}, {1, 2, 150}, {0, 2, 50}};
  const auto r = route_traffic(net, caps, matrix);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_DOUBLE_EQ(r->offered_gbps, 300.0);
  EXPECT_NEAR(r->served_gbps, 300.0, 1e-6);
  EXPECT_NEAR(r->availability(), 1.0, 1e-9);
  for (const auto& f : r->flows) {
    EXPECT_NEAR(f.served_gbps, f.flow.gbps, 1e-6);
  }
}

TEST(Routing, CapsAtLinkCapacity) {
  const auto net = ring_net(400);
  const auto plan = plan_of(net);
  auto caps = capacities_from_plan(net, plan);
  // One flow offering more than any cut of the IP graph between 0 and 1.
  const TrafficMatrix matrix = {{0, 1, 5000}};
  const auto r = route_traffic(net, caps, matrix);
  ASSERT_TRUE(r) << r.error().message;
  // Max flow 0->1 = cap(0-1) + cap(path 0..3-2-1 minimum) — with three IP
  // links of equal capacity the side route is limited by its bottleneck.
  EXPECT_LE(r->served_gbps, 5000.0);
  EXPECT_GT(r->served_gbps, caps[0].capacity_gbps - 1e-6);
  EXPECT_LT(r->availability(), 1.0);
}

TEST(Routing, DisconnectedFlowServesZero) {
  topology::Network net;
  net.optical.add_node("a");
  net.optical.add_node("b");
  net.optical.add_node("c");  // isolated at the IP layer
  net.optical.add_fiber(0, 1, 100);
  net.optical.add_fiber(1, 2, 100);
  net.ip.add_link(0, 1, 200);
  const auto plan = plan_of(net);
  const auto caps = capacities_from_plan(net, plan);
  const TrafficMatrix matrix = {{0, 2, 100}, {0, 1, 50}};
  const auto r = route_traffic(net, caps, matrix);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->flows[0].served_gbps, 0.0, 1e-9);
  EXPECT_NEAR(r->flows[1].served_gbps, 50.0, 1e-6);
}

TEST(Routing, RestorationImprovesServedTrafficUnderCut) {
  // The end-to-end §8 claim: restoration raises IP-layer availability.
  const auto net = ring_net(400);
  const auto plan = plan_of(net);
  Rng rng(9);
  const auto matrix = random_traffic(net, plan, 0.8, rng, 24);
  const restoration::FailureScenario cut{{0}, 1.0};

  const auto before = route_traffic(net, capacities_from_plan(net, plan),
                                    matrix);
  const auto degraded =
      route_traffic(net, degraded_capacities(net, plan, cut), matrix);
  restoration::Restorer restorer(transponder::svt_flexwan());
  const auto outcome = restorer.restore(net, plan, cut);
  const auto restored = route_traffic(
      net, restored_capacities(net, plan, cut, outcome), matrix);

  ASSERT_TRUE(before);
  ASSERT_TRUE(degraded);
  ASSERT_TRUE(restored);
  EXPECT_LE(degraded->served_gbps, before->served_gbps + 1e-6);
  EXPECT_GE(restored->served_gbps, degraded->served_gbps - 1e-6);
  // The ring fully restores, so served traffic returns to the healthy level.
  EXPECT_NEAR(restored->served_gbps, before->served_gbps, 1e-4);
}

TEST(Routing, AvailabilityMonotoneInCapacity) {
  const auto net = ring_net(400);
  const auto plan = plan_of(net);
  Rng rng(11);
  const auto matrix = random_traffic(net, plan, 1.2, rng, 24);  // congested
  auto caps = capacities_from_plan(net, plan);
  const auto full = route_traffic(net, caps, matrix);
  ASSERT_TRUE(full);
  for (auto& cap : caps) cap.capacity_gbps *= 0.5;
  const auto halved = route_traffic(net, caps, matrix);
  ASSERT_TRUE(halved);
  EXPECT_LE(halved->served_gbps, full->served_gbps + 1e-6);
}

}  // namespace
}  // namespace flexwan::te
