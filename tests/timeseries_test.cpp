// Tests for the deterministic sim-time time-series telemetry
// (src/obs/timeseries): sampler merge ordering, derived health indicators,
// jsonl round-trips, and the thread-count byte-identity contract through
// run_lifecycle.
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "planning/heuristic.h"
#include "sim/simulator.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::obs {
namespace {

TimeSample sample(double t, int trial, double availability, double lost,
                  double fragmentation = 0.0) {
  TimeSample s;
  s.t_days = t;
  s.trial = trial;
  s.availability = availability;
  s.lost_gbps = lost;
  s.offered_gbps = 100.0;
  s.fragmentation = fragmentation;
  return s;
}

class TimeSeriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeSeries::instance().reset();
    set_timeseries_enabled(true);
  }
  void TearDown() override {
    set_timeseries_enabled(false);
    TimeSeries::instance().reset();
  }
};

TEST(TimeSeriesSampler, TickAtEventTimeCarriesPreEventStateAndSortsFirst) {
  std::vector<TimeSample> rows;
  TimeSeriesSampler sampler(/*interval_days=*/10.0, /*horizon_days=*/25.0,
                            &rows);
  sampler.start(sample(0.0, 0, 1.0, 0.0));
  // Event exactly on the t = 10 tick: the tick must be emitted first with
  // the pre-event state, then the event row with the dip.
  sampler.record_event(10.0, sample(10.0, 0, 0.9, 10.0));
  sampler.finish();

  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].reason, "start");
  EXPECT_EQ(rows[0].t_days, 0.0);
  EXPECT_EQ(rows[1].reason, "interval");
  EXPECT_EQ(rows[1].t_days, 10.0);
  EXPECT_EQ(rows[1].availability, 1.0);  // pre-event state, no smeared dip
  EXPECT_EQ(rows[2].reason, "event");
  EXPECT_EQ(rows[2].t_days, 10.0);
  EXPECT_EQ(rows[2].availability, 0.9);
  EXPECT_EQ(rows[3].reason, "interval");
  EXPECT_EQ(rows[3].t_days, 20.0);
  EXPECT_EQ(rows[3].availability, 0.9);  // event state persists on ticks
  EXPECT_EQ(rows[4].reason, "final");
  EXPECT_EQ(rows[4].t_days, 25.0);

  // Rows are non-decreasing in time — the merge never reorders.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].t_days, rows[i - 1].t_days);
  }
}

TEST(TimeSeriesSampler, EventlessRunStillBracketsTheHorizon) {
  std::vector<TimeSample> rows;
  TimeSeriesSampler sampler(7.0, 21.0, &rows);
  sampler.start(sample(0.0, 0, 1.0, 0.0));
  sampler.finish();
  ASSERT_EQ(rows.size(), 5u);  // start + ticks at 7/14/21 + final
  EXPECT_EQ(rows.front().reason, "start");
  EXPECT_EQ(rows[3].t_days, 21.0);  // tick exactly on the horizon
  EXPECT_EQ(rows.back().reason, "final");
  EXPECT_EQ(rows.back().t_days, 21.0);
}

TEST(TimeSeriesSampler, NonPositiveIntervalRecordsEventRowsOnly) {
  std::vector<TimeSample> rows;
  TimeSeriesSampler sampler(0.0, 100.0, &rows);
  sampler.start(sample(0.0, 0, 1.0, 0.0));
  sampler.record_event(40.0, sample(40.0, 0, 0.95, 5.0));
  sampler.finish();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].reason, "start");
  EXPECT_EQ(rows[1].reason, "event");
  EXPECT_EQ(rows[2].reason, "final");
}

TEST(TimeSeriesSampler, FinishWithoutStartEmitsNothing) {
  std::vector<TimeSample> rows;
  TimeSeriesSampler sampler(10.0, 50.0, &rows);
  sampler.finish();
  EXPECT_TRUE(rows.empty());
}

TEST(TimeSample, JsonlRoundTripsEveryField) {
  TimeSample s;
  s.t_days = 123.456;
  s.trial = 3;
  s.reason = "event";
  s.availability = 0.987654321;
  s.lost_gbps = 345.5;
  s.offered_gbps = 28900.0;
  s.active_cuts = 2;
  s.restored_wavelengths = 7;
  s.unrestored_wavelengths = 4;
  s.spectrum_util = 0.0625;
  s.fragmentation = 0.015625;
  s.free_blocks = 66;
  s.largest_free_block = 384;

  const auto parsed = parse_sample(s.to_jsonl());
  ASSERT_TRUE(parsed) << parsed.error().message;
  EXPECT_EQ(parsed->to_jsonl(), s.to_jsonl());
  EXPECT_EQ(parsed->trial, 3);
  EXPECT_EQ(parsed->reason, "event");
  EXPECT_EQ(parsed->free_blocks, 66);
  EXPECT_EQ(parsed->largest_free_block, 384);
}

TEST(TimeSample, ParseRejectsMalformedRows) {
  EXPECT_FALSE(parse_sample("not json"));
  EXPECT_FALSE(parse_sample("[1, 2]"));
  // A well-formed object missing a required field.
  EXPECT_FALSE(parse_sample("{\"t_days\": 1.0, \"trial\": 0}"));
  // reason must be a string.
  auto row = sample(1.0, 0, 1.0, 0.0);
  row.reason = "start";
  std::string line = row.to_jsonl();
  const auto pos = line.find("\"start\"");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 7, "17");
  EXPECT_FALSE(parse_sample(line));
}

TEST(DeriveHealth, EmptyTraceIsAllZero) {
  const auto health = derive_health({});
  EXPECT_EQ(health.availability_dip_max, 0.0);
  EXPECT_EQ(health.time_to_recover_days_worst, 0.0);
  EXPECT_EQ(health.time_to_recover_days_p99, 0.0);
  EXPECT_EQ(health.recovery_episodes, 0);
  EXPECT_EQ(health.unrecovered, 0);
  EXPECT_EQ(health.fragmentation_delta, 0.0);
}

TEST(DeriveHealth, HandBuiltTraceMatchesHandComputedIndicators) {
  // Trial 0: dip to 0.9 at t=10, recovered at t=12 (episode: 2 days);
  //          deeper dip to 0.8 at t=20, recovered at t=25 (episode: 5 days);
  //          fragmentation drifts 0.1 -> 0.3.
  // Trial 1: dip at t=50 never recovers before the last row at t=60
  //          (censored episode: 10 days); fragmentation flat.
  const std::vector<TimeSample> trace = {
      sample(0.0, 0, 1.0, 0.0, 0.1),  sample(10.0, 0, 0.9, 10.0, 0.2),
      sample(12.0, 0, 1.0, 0.0, 0.2), sample(20.0, 0, 0.8, 20.0, 0.25),
      sample(25.0, 0, 1.0, 0.0, 0.3), sample(30.0, 0, 1.0, 0.0, 0.3),
      // t_days restarts: new segment even before the trial check matters.
      sample(0.0, 1, 1.0, 0.0, 0.5),  sample(50.0, 1, 0.95, 5.0, 0.5),
      sample(60.0, 1, 0.97, 3.0, 0.5),
  };
  const auto health = derive_health(trace);
  EXPECT_NEAR(health.availability_dip_max, 0.2, 1e-12);
  EXPECT_NEAR(health.time_to_recover_days_worst, 10.0, 1e-12);  // censored
  // Durations {2, 5, 10}: nearest-rank P99 = ceil(0.99 * 3) = 3rd = 10.
  EXPECT_NEAR(health.time_to_recover_days_p99, 10.0, 1e-12);
  EXPECT_EQ(health.recovery_episodes, 3);
  EXPECT_EQ(health.unrecovered, 1);
  // Segment deltas: (0.3 - 0.1) and (0.5 - 0.5), mean 0.1.
  EXPECT_NEAR(health.fragmentation_delta, 0.1, 1e-12);
}

TEST(DeriveHealth, SegmentsSplitOnTrialChangeNotOnlyTimeReset) {
  // Two trials whose time ranges would chain monotonically if the trial
  // index were ignored: the open episode at the end of trial 0 must not
  // be closed by trial 1's clean first row.
  const std::vector<TimeSample> trace = {
      sample(0.0, 0, 1.0, 0.0),
      sample(5.0, 0, 0.9, 10.0),
      sample(6.0, 1, 1.0, 0.0),
      sample(9.0, 1, 1.0, 0.0),
  };
  const auto health = derive_health(trace);
  EXPECT_EQ(health.recovery_episodes, 1);
  EXPECT_EQ(health.unrecovered, 1);
  EXPECT_NEAR(health.time_to_recover_days_worst, 0.0, 1e-12);  // truncated at open row
}

TEST(DeriveHealth, FlattenUsesTheSharedFieldSpelling) {
  HealthIndicators health;
  health.availability_dip_max = 0.25;
  health.recovery_episodes = 4;
  const auto fields = flatten_health(health, "timeseries.health.");
  ASSERT_EQ(fields.size(), 6u);
  EXPECT_EQ(fields[0].first, "timeseries.health.availability_dip.max");
  EXPECT_EQ(fields[0].second, 0.25);
  EXPECT_EQ(fields[1].first, "timeseries.health.time_to_recover_days.worst");
  EXPECT_EQ(fields[2].first, "timeseries.health.time_to_recover_days.p99");
  EXPECT_EQ(fields[3].first, "timeseries.health.recovery_episodes");
  EXPECT_EQ(fields[3].second, 4.0);
  EXPECT_EQ(fields[4].first, "timeseries.health.unrecovered");
  EXPECT_EQ(fields[5].first, "timeseries.health.fragmentation.delta");
}

TEST_F(TimeSeriesTest, LifecycleTraceIsByteIdenticalAcrossThreadCounts) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  sim::LifecycleConfig config;
  config.timeline.cut_rate_per_1000km_per_year = 6.0;
  config.timeline.mttr_mean_hours = 36.0;
  config.trials = 6;
  config.seed = 17;
  config.sample_interval_days = 30.0;

  const auto serial = sim::run_lifecycle(net, *plan, transponder::svt_flexwan(),
                                         config, engine::Engine(1));
  ASSERT_TRUE(serial) << serial.error().message;
  const std::string serial_jsonl = TimeSeries::instance().to_jsonl();
  EXPECT_FALSE(serial_jsonl.empty());

  TimeSeries::instance().reset();
  const auto threaded = sim::run_lifecycle(
      net, *plan, transponder::svt_flexwan(), config, engine::Engine(8));
  ASSERT_TRUE(threaded) << threaded.error().message;
  EXPECT_EQ(serial_jsonl, TimeSeries::instance().to_jsonl());

  // Rows arrive in trial-index order with non-decreasing time per trial,
  // and every trial contributes its start/final bracket.
  const auto rows = TimeSeries::instance().samples();
  int last_trial = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].trial, last_trial);
    if (rows[i].trial != last_trial) {
      EXPECT_EQ(rows[i].trial, last_trial + 1);
      EXPECT_EQ(rows[i].reason, "start");
      EXPECT_EQ(rows[i - 1].reason, "final");
    } else if (i > 0 && rows[i - 1].trial == rows[i].trial) {
      EXPECT_GE(rows[i].t_days, rows[i - 1].t_days);
    }
    last_trial = rows[i].trial;
  }
  EXPECT_EQ(last_trial, 5);
  EXPECT_EQ(rows.front().reason, "start");
  EXPECT_EQ(rows.back().reason, "final");
}

TEST_F(TimeSeriesTest, DisabledSamplerRecordsNothing) {
  set_timeseries_enabled(false);
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  sim::LifecycleConfig config;
  config.timeline.cut_rate_per_1000km_per_year = 6.0;
  config.trials = 2;
  config.seed = 17;
  config.sample_interval_days = 30.0;
  const auto report = sim::run_lifecycle(net, *plan,
                                         transponder::svt_flexwan(), config);
  ASSERT_TRUE(report) << report.error().message;
  EXPECT_EQ(TimeSeries::instance().size(), 0u);
  EXPECT_EQ(TimeSeries::instance().to_jsonl(), "");
}

TEST_F(TimeSeriesTest, LifecycleHealthIndicatorsAreInternallyConsistent) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  ASSERT_TRUE(plan);
  sim::LifecycleConfig config;
  config.timeline.cut_rate_per_1000km_per_year = 10.0;
  config.timeline.mttr_mean_hours = 48.0;
  config.trials = 4;
  config.seed = 7;
  const auto report = sim::run_lifecycle(net, *plan,
                                         transponder::svt_flexwan(), config);
  ASSERT_TRUE(report) << report.error().message;
  const auto rows = TimeSeries::instance().samples();
  ASSERT_FALSE(rows.empty());
  const auto health = derive_health(rows);
  EXPECT_GT(health.recovery_episodes, 0);
  EXPECT_GE(health.time_to_recover_days_worst,
            health.time_to_recover_days_p99 > 0.0
                ? health.time_to_recover_days_p99
                : 0.0);
  EXPECT_GE(health.availability_dip_max, 0.0);
  EXPECT_LE(health.availability_dip_max, 1.0);
  EXPECT_GE(health.unrecovered, 0);
  EXPECT_LE(health.unrecovered, health.recovery_episodes);
}

}  // namespace
}  // namespace flexwan::obs
