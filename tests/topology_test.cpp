// Tests for the graph model, Dijkstra/Yen KSP, and the topology builders.
#include <gtest/gtest.h>

#include <set>

#include "topology/builders.h"
#include "topology/demand.h"
#include "topology/graph.h"
#include "topology/ksp.h"

namespace flexwan::topology {
namespace {

OpticalTopology diamond() {
  // 0 --100-- 1 --100-- 3, and 0 --150-- 2 --150-- 3, plus 1 --50-- 2.
  OpticalTopology g;
  for (int i = 0; i < 4; ++i) g.add_node("N" + std::to_string(i));
  g.add_fiber(0, 1, 100);  // f0
  g.add_fiber(1, 3, 100);  // f1
  g.add_fiber(0, 2, 150);  // f2
  g.add_fiber(2, 3, 150);  // f3
  g.add_fiber(1, 2, 50);   // f4
  return g;
}

TEST(Graph, AddAndQueryNodesFibers) {
  auto g = diamond();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.fiber_count(), 5);
  EXPECT_EQ(g.node(0).name, "N0");
  EXPECT_EQ(g.fiber(0).length_km, 100);
  EXPECT_EQ(g.fiber(0).other(0), 1);
  EXPECT_EQ(g.fiber(0).other(1), 0);
  ASSERT_TRUE(g.find_node("N3").has_value());
  EXPECT_EQ(*g.find_node("N3"), 3);
  EXPECT_FALSE(g.find_node("nope").has_value());
}

TEST(Graph, FindFiberEitherOrientation) {
  auto g = diamond();
  ASSERT_TRUE(g.find_fiber(0, 1).has_value());
  ASSERT_TRUE(g.find_fiber(1, 0).has_value());
  EXPECT_EQ(*g.find_fiber(0, 1), *g.find_fiber(1, 0));
  EXPECT_FALSE(g.find_fiber(0, 3).has_value());
}

TEST(Graph, AddFiberValidation) {
  OpticalTopology g;
  g.add_node("a");
  g.add_node("b");
  EXPECT_THROW(g.add_fiber(0, 0, 100), std::invalid_argument);
  EXPECT_THROW(g.add_fiber(0, 5, 100), std::invalid_argument);
  EXPECT_THROW(g.add_fiber(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(g.add_fiber(0, 1, -5.0), std::invalid_argument);
}

TEST(Graph, IncidentLists) {
  auto g = diamond();
  EXPECT_EQ(g.incident(0).size(), 2u);
  EXPECT_EQ(g.incident(1).size(), 3u);
}

TEST(IpTopology, ScaledMultipliesDemands) {
  IpTopology ip;
  ip.add_link(0, 1, 300.0);
  ip.add_link(1, 2, 700.0);
  const auto doubled = ip.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.link(0).demand_gbps, 600.0);
  EXPECT_DOUBLE_EQ(doubled.link(1).demand_gbps, 1400.0);
  EXPECT_DOUBLE_EQ(doubled.total_demand_gbps(), 2000.0);
  // Names and endpoints survive scaling.
  EXPECT_EQ(doubled.link(0).src, 0);
  EXPECT_EQ(doubled.link(1).dst, 2);
}

TEST(ShortestPath, FindsMinimumLength) {
  auto g = diamond();
  const auto p = shortest_path(g, 0, 3);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->length_km, 200.0);
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(p->hop_count(), 2);
}

TEST(ShortestPath, RespectsExclusions) {
  auto g = diamond();
  const std::vector<FiberId> cut = {0};  // kill 0-1
  const auto p = shortest_path(g, 0, 3, cut);
  ASSERT_TRUE(p);
  // Must route 0-2 then either 2-3 (300) or 2-1-3 (300): both length 300.
  EXPECT_DOUBLE_EQ(p->length_km, 300.0);
  EXPECT_FALSE(p->uses_fiber(0));
}

TEST(ShortestPath, UnreachableReportsError) {
  OpticalTopology g;
  g.add_node("a");
  g.add_node("b");
  const auto p = shortest_path(g, 0, 1);
  ASSERT_FALSE(p);
  EXPECT_EQ(p.error().code, "unreachable");
}

TEST(ShortestPath, SourceEqualsDestinationIsEmptyPath) {
  auto g = diamond();
  const auto p = shortest_path(g, 2, 2);
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->empty());
  EXPECT_DOUBLE_EQ(p->length_km, 0.0);
}

TEST(Ksp, ReturnsPathsInLengthOrder) {
  auto g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 4);
  ASSERT_GE(paths.size(), 3u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].length_km, paths[i].length_km);
  }
  EXPECT_DOUBLE_EQ(paths[0].length_km, 200.0);
}

TEST(Ksp, PathsAreDistinct) {
  auto g = diamond();
  const auto paths = k_shortest_paths(g, 0, 3, 6);
  std::set<std::vector<FiberId>> unique;
  for (const auto& p : paths) unique.insert(p.fibers);
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(Ksp, PathsAreLoopless) {
  auto g = diamond();
  for (const auto& p : k_shortest_paths(g, 0, 3, 6)) {
    std::set<NodeId> seen(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(seen.size(), p.nodes.size()) << "path revisits a node";
  }
}

TEST(Ksp, HonoursK) {
  auto g = diamond();
  EXPECT_EQ(k_shortest_paths(g, 0, 3, 1).size(), 1u);
  EXPECT_EQ(k_shortest_paths(g, 0, 3, 2).size(), 2u);
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 0).empty());
}

TEST(Ksp, FewerPathsThanKWhenGraphIsThin) {
  OpticalTopology g;
  g.add_node("a");
  g.add_node("b");
  g.add_fiber(0, 1, 100);
  EXPECT_EQ(k_shortest_paths(g, 0, 1, 5).size(), 1u);
}

TEST(Ksp, PathNodeAndFiberSequencesAgree) {
  auto g = diamond();
  for (const auto& p : k_shortest_paths(g, 0, 3, 5)) {
    ASSERT_EQ(p.nodes.size(), p.fibers.size() + 1);
    double length = 0.0;
    for (std::size_t i = 0; i < p.fibers.size(); ++i) {
      const auto& f = g.fiber(p.fibers[i]);
      EXPECT_TRUE(f.touches(p.nodes[i]));
      EXPECT_TRUE(f.touches(p.nodes[i + 1]));
      length += f.length_km;
    }
    EXPECT_NEAR(length, p.length_km, 1e-9);
  }
}

// Exhaustive loopless path enumeration for cross-checking Yen's algorithm.
void enumerate_paths(const OpticalTopology& g, NodeId cur, NodeId dst,
                     std::vector<FiberId>& fibers, std::set<NodeId>& visited,
                     double length, std::vector<Path>& out) {
  if (cur == dst) {
    Path p;
    p.fibers = fibers;
    p.length_km = length;
    out.push_back(std::move(p));
    return;
  }
  for (FiberId f : g.incident(cur)) {
    const NodeId next = g.fiber(f).other(cur);
    if (visited.contains(next)) continue;
    visited.insert(next);
    fibers.push_back(f);
    enumerate_paths(g, next, dst, fibers, visited, length + g.fiber(f).length_km,
                    out);
    fibers.pop_back();
    visited.erase(next);
  }
}

// Property: Yen's K shortest paths equal the K shortest of the exhaustive
// loopless path set on random graphs.
class KspBruteForceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KspBruteForceTest, MatchesExhaustiveEnumeration) {
  Rng rng(GetParam());
  RandomBackboneParams params;
  params.nodes = rng.uniform_int(5, 8);
  params.extra_edge_prob = 0.4;
  params.ip_links = 1;
  const auto net = random_backbone(params, rng);
  const auto& g = net.optical;

  const NodeId src = 0;
  const NodeId dst = g.node_count() - 1;
  std::vector<Path> all;
  std::vector<FiberId> fibers;
  std::set<NodeId> visited{src};
  enumerate_paths(g, src, dst, fibers, visited, 0.0, all);
  ASSERT_FALSE(all.empty());
  std::sort(all.begin(), all.end(), [](const Path& a, const Path& b) {
    return a.length_km < b.length_km;
  });

  const int k = std::min<int>(5, static_cast<int>(all.size()));
  const auto yen = k_shortest_paths(g, src, dst, k);
  ASSERT_EQ(static_cast<int>(yen.size()), k) << "seed " << GetParam();
  for (int i = 0; i < k; ++i) {
    // Lengths must agree (ties may permute the fiber sequences).
    EXPECT_NEAR(yen[static_cast<std::size_t>(i)].length_km,
                all[static_cast<std::size_t>(i)].length_km, 1e-9)
        << "seed " << GetParam() << " rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KspBruteForceTest,
                         ::testing::Range<std::uint64_t>(50, 70));

// --- builders -------------------------------------------------------------

TEST(Builders, CernetIsConnectedAndRealSized) {
  const auto net = make_cernet();
  EXPECT_EQ(net.name, "Cernet");
  EXPECT_GE(net.optical.node_count(), 20);
  EXPECT_GE(net.optical.fiber_count(), 24);
  EXPECT_GE(net.ip.link_count(), 30);
  // Every IP link's endpoints are optically reachable.
  for (const auto& l : net.ip.links()) {
    EXPECT_TRUE(shortest_path(net.optical, l.src, l.dst))
        << l.name << " unreachable";
  }
}

TEST(Builders, CernetPathsStayWithin100GReach) {
  // The 100G-WAN baseline (3000 km reach) must be feasible at scale 1.
  const auto net = make_cernet();
  for (const auto& l : net.ip.links()) {
    const auto p = shortest_path(net.optical, l.src, l.dst);
    ASSERT_TRUE(p);
    EXPECT_LE(p->length_km, 3000.0) << l.name;
  }
}

TEST(Builders, CernetDeterministicForSameSeed) {
  const auto a = make_cernet(7);
  const auto b = make_cernet(7);
  ASSERT_EQ(a.ip.link_count(), b.ip.link_count());
  for (int i = 0; i < a.ip.link_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.ip.link(i).demand_gbps, b.ip.link(i).demand_gbps);
  }
}

TEST(Builders, TbackbonePathLengthDistributionMatchesFig2a) {
  // Fig. 2(a): roughly half of all optical paths are shorter than 200 km,
  // with a tail beyond 2000 km.
  const auto net = make_tbackbone();
  int under200 = 0;
  double longest = 0.0;
  int total = 0;
  for (const auto& l : net.ip.links()) {
    const auto p = shortest_path(net.optical, l.src, l.dst);
    ASSERT_TRUE(p);
    ++total;
    if (p->length_km < 200.0) ++under200;
    longest = std::max(longest, p->length_km);
  }
  const double frac = static_cast<double>(under200) / total;
  EXPECT_GE(frac, 0.35);
  EXPECT_LE(frac, 0.75);
  EXPECT_GE(longest, 2000.0);
}

TEST(Builders, TbackboneDemandsArePositiveMultiplesOf100) {
  const auto net = make_tbackbone();
  for (const auto& l : net.ip.links()) {
    EXPECT_GE(l.demand_gbps, 100.0);
    EXPECT_NEAR(std::fmod(l.demand_gbps, 100.0), 0.0, 1e-9);
  }
}

TEST(Builders, LinearChainShape) {
  const auto net = make_linear_chain(5, 80.0);
  EXPECT_EQ(net.optical.node_count(), 6);
  EXPECT_EQ(net.optical.fiber_count(), 5);
  const auto p = shortest_path(net.optical, 0, 5);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->length_km, 400.0);
  EXPECT_EQ(net.ip.link_count(), 1);
}

class RandomBackboneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBackboneTest, GeneratedNetworksAreConnected) {
  Rng rng(GetParam());
  RandomBackboneParams params;
  const auto net = random_backbone(params, rng);
  EXPECT_EQ(net.optical.node_count(), params.nodes);
  EXPECT_EQ(net.ip.link_count(), params.ip_links);
  for (int n = 1; n < net.optical.node_count(); ++n) {
    EXPECT_TRUE(shortest_path(net.optical, 0, n)) << "node " << n;
  }
  for (const auto& l : net.ip.links()) {
    EXPECT_NE(l.src, l.dst);
    EXPECT_GE(l.demand_gbps, 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBackboneTest,
                         ::testing::Values(1, 17, 42, 99, 123));

TEST(Demand, DrawRespectsGranularityAndMinimum) {
  Rng rng(3);
  DemandParams params;
  for (int i = 0; i < 200; ++i) {
    const double d = draw_demand(params, rng);
    EXPECT_GE(d, params.min_gbps);
    EXPECT_NEAR(std::fmod(d, params.granularity_gbps), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace flexwan::topology
