// Tests for transponder modes and the three capability catalogs.
#include <gtest/gtest.h>

#include "transponder/catalog.h"
#include "transponder/catalog_io.h"

namespace flexwan::transponder {
namespace {

TEST(Mode, PixelsAndSpectralEfficiency) {
  Mode m;
  m.data_rate_gbps = 400;
  m.spacing_ghz = 112.5;
  m.reach_km = 1600;
  EXPECT_EQ(m.pixels(), 9);
  EXPECT_NEAR(m.spectral_efficiency(), 400.0 / 112.5, 1e-12);
  EXPECT_TRUE(m.reaches(1600));
  EXPECT_TRUE(m.reaches(100));
  EXPECT_FALSE(m.reaches(1601));
}

TEST(Mode, DescribeIsHumanReadable) {
  Mode m;
  m.data_rate_gbps = 300;
  m.spacing_ghz = 75;
  m.reach_km = 1100;
  m.modulation = Modulation::k8Qam;
  EXPECT_EQ(m.describe(), "300G@75GHz(8QAM,reach 1100km)");
}

TEST(Mode, BitsPerSymbolOrdering) {
  EXPECT_LT(bits_per_symbol(Modulation::kBpsk),
            bits_per_symbol(Modulation::kQpsk));
  EXPECT_LT(bits_per_symbol(Modulation::kQpsk),
            bits_per_symbol(Modulation::k8Qam));
  EXPECT_LT(bits_per_symbol(Modulation::k8Qam),
            bits_per_symbol(Modulation::kPcs64Qam));
}

TEST(Catalog, FixedGrid100GHasExactlyThePaperMode) {
  const auto& c = fixed_grid_100g();
  EXPECT_EQ(c.name(), "100G-WAN");
  ASSERT_EQ(c.size(), 1u);
  const auto& m = c.modes()[0];
  EXPECT_DOUBLE_EQ(m.data_rate_gbps, 100);
  EXPECT_DOUBLE_EQ(m.spacing_ghz, 50);
  EXPECT_DOUBLE_EQ(m.reach_km, 3000);
  EXPECT_DOUBLE_EQ(m.spectral_efficiency(), 2.0);  // Fig. 14(b): fixed at 2
}

TEST(Catalog, RadwanBvtMatchesSection2) {
  // 300/200/100 Gbps at 8QAM/QPSK/BPSK for 1100/2000/5000 km, all 75 GHz.
  const auto& c = bvt_radwan();
  ASSERT_EQ(c.size(), 3u);
  for (const auto& m : c.modes()) {
    EXPECT_DOUBLE_EQ(m.spacing_ghz, 75.0);
  }
  const auto at600 = c.max_rate_mode(600);
  ASSERT_TRUE(at600.has_value());
  EXPECT_DOUBLE_EQ(at600->data_rate_gbps, 300);
  const auto at1500 = c.max_rate_mode(1500);
  ASSERT_TRUE(at1500.has_value());
  EXPECT_DOUBLE_EQ(at1500->data_rate_gbps, 200);
  const auto at3000 = c.max_rate_mode(3000);
  ASSERT_TRUE(at3000.has_value());
  EXPECT_DOUBLE_EQ(at3000->data_rate_gbps, 100);
  EXPECT_FALSE(c.max_rate_mode(5001).has_value());
}

TEST(Catalog, SvtHasAllTable2Rows) {
  // Table 2 has 36 populated cells.
  const auto& c = svt_flexwan();
  EXPECT_EQ(c.name(), "FlexWAN");
  EXPECT_EQ(c.size(), 36u);
}

// Every populated Table 2 cell, as (rate, spacing, reach).
struct Table2Row {
  double rate;
  double spacing;
  double reach;
};

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Test, RowPresentInSvtCatalog) {
  const auto row = GetParam();
  bool found = false;
  for (const auto& m : svt_flexwan().modes()) {
    if (m.data_rate_gbps == row.rate && m.spacing_ghz == row.spacing) {
      EXPECT_DOUBLE_EQ(m.reach_km, row.reach);
      found = true;
    }
  }
  EXPECT_TRUE(found) << row.rate << "G @ " << row.spacing;
}

INSTANTIATE_TEST_SUITE_P(
    AllRows, Table2Test,
    ::testing::Values(
        Table2Row{100, 50, 3000}, Table2Row{200, 50, 1000},
        Table2Row{200, 62.5, 1500}, Table2Row{100, 75, 5000},
        Table2Row{200, 75, 2000}, Table2Row{300, 75, 1100},
        Table2Row{400, 75, 600}, Table2Row{300, 87.5, 1500},
        Table2Row{400, 87.5, 1000}, Table2Row{500, 87.5, 600},
        Table2Row{600, 87.5, 300}, Table2Row{300, 100, 2000},
        Table2Row{400, 100, 1500}, Table2Row{500, 100, 900},
        Table2Row{600, 100, 400}, Table2Row{700, 100, 200},
        Table2Row{400, 112.5, 1600}, Table2Row{500, 112.5, 1100},
        Table2Row{600, 112.5, 500}, Table2Row{700, 112.5, 300},
        Table2Row{800, 112.5, 150}, Table2Row{400, 125, 1700},
        Table2Row{500, 125, 1200}, Table2Row{600, 125, 600},
        Table2Row{700, 125, 350}, Table2Row{800, 125, 200},
        Table2Row{400, 137.5, 1800}, Table2Row{500, 137.5, 1300},
        Table2Row{600, 137.5, 700}, Table2Row{700, 137.5, 450},
        Table2Row{800, 137.5, 250}, Table2Row{400, 150, 1900},
        Table2Row{500, 150, 1400}, Table2Row{600, 150, 800},
        Table2Row{700, 150, 500}, Table2Row{800, 150, 300}));

TEST(Catalog, SvtMaxRateTracksFig2b) {
  // Fig. 2(b): the SVT's max data rate vs distance.  Key points: 800 Gbps
  // up to 300 km, 500 Gbps at 1400 km, 400 at 1900, and it still serves
  // 5000 km at 100 Gbps.
  const auto& c = svt_flexwan();
  EXPECT_DOUBLE_EQ(c.max_rate_mode(150)->data_rate_gbps, 800);
  EXPECT_DOUBLE_EQ(c.max_rate_mode(300)->data_rate_gbps, 800);
  EXPECT_DOUBLE_EQ(c.max_rate_mode(301)->data_rate_gbps, 700);
  EXPECT_DOUBLE_EQ(c.max_rate_mode(500)->data_rate_gbps, 700);
  EXPECT_DOUBLE_EQ(c.max_rate_mode(800)->data_rate_gbps, 600);
  EXPECT_DOUBLE_EQ(c.max_rate_mode(1400)->data_rate_gbps, 500);
  EXPECT_DOUBLE_EQ(c.max_rate_mode(1900)->data_rate_gbps, 400);
  EXPECT_DOUBLE_EQ(c.max_rate_mode(2000)->data_rate_gbps, 300);
  EXPECT_DOUBLE_EQ(c.max_rate_mode(5000)->data_rate_gbps, 100);
  EXPECT_FALSE(c.max_rate_mode(5001).has_value());
}

TEST(Catalog, SvtBeatsOrMatchesBvtEverywhere) {
  // Fig. 2(b): SVT's achievable rate dominates BVT's at every distance.
  const auto& svt = svt_flexwan();
  const auto& bvt = bvt_radwan();
  for (double d = 100; d <= 5000; d += 100) {
    const auto s = svt.max_rate_mode(d);
    const auto b = bvt.max_rate_mode(d);
    if (!b) continue;
    ASSERT_TRUE(s.has_value()) << d;
    EXPECT_GE(s->data_rate_gbps, b->data_rate_gbps) << "at " << d << " km";
  }
}

TEST(Catalog, MaxRateTieBreaksOnNarrowestSpacing) {
  // At 600 km both 500G@87.5 (reach 600) and 600G@150 (reach 800) work;
  // 600G wins on rate.  At 900 km, 500G@100 (reach 900) should win over
  // wider 500G rows.
  const auto m = svt_flexwan().max_rate_mode(900);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->data_rate_gbps, 500);
  EXPECT_DOUBLE_EQ(m->spacing_ghz, 100);
}

TEST(Catalog, NarrowestModePrefersThinnestChannel) {
  // Restoration asks: keep >= 400 Gbps on a 1200 km path.  Candidates:
  // 400@100 (reach 1500), 400@112.5 (1600), 500@125 (1200), ...  The
  // thinnest spacing that still reaches is 100 GHz.
  const auto m = svt_flexwan().narrowest_mode(1200, 400);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->spacing_ghz, 100);
  EXPECT_DOUBLE_EQ(m->data_rate_gbps, 400);
  // Past 1500 km the 100 GHz row no longer reaches; 112.5 GHz takes over.
  const auto far = svt_flexwan().narrowest_mode(1550, 400);
  ASSERT_TRUE(far.has_value());
  EXPECT_DOUBLE_EQ(far->spacing_ghz, 112.5);
}

TEST(Catalog, NarrowestModeFailsWhenNothingReaches) {
  EXPECT_FALSE(svt_flexwan().narrowest_mode(2500, 800).has_value());
  EXPECT_FALSE(svt_flexwan().narrowest_mode(6000, 100).has_value());
}

TEST(Catalog, FeasibleFiltersStrictlyByReach) {
  const auto& c = svt_flexwan();
  for (double d : {100.0, 450.0, 1000.0, 2200.0, 4000.0}) {
    for (const auto& m : c.feasible(d)) {
      EXPECT_GE(m.reach_km, d);
    }
  }
  EXPECT_EQ(c.feasible(5000.0).size(), 1u);
  EXPECT_TRUE(c.feasible(9999.0).empty());
}

TEST(Catalog, MaxReach) {
  EXPECT_DOUBLE_EQ(fixed_grid_100g().max_reach_km(), 3000);
  EXPECT_DOUBLE_EQ(bvt_radwan().max_reach_km(), 5000);
  EXPECT_DOUBLE_EQ(svt_flexwan().max_reach_km(), 5000);
}

TEST(Catalog, SvtSpectralEfficiencyRange) {
  // Best SE: 800G@112.5 = 7.1 b/s/Hz; worst: 100G@75 = 1.33.
  double best = 0.0;
  double worst = 1e9;
  for (const auto& m : svt_flexwan().modes()) {
    best = std::max(best, m.spectral_efficiency());
    worst = std::min(worst, m.spectral_efficiency());
  }
  EXPECT_NEAR(best, 800.0 / 112.5, 1e-9);
  EXPECT_NEAR(worst, 100.0 / 75.0, 1e-9);
}

// --- catalog text format -----------------------------------------------------

TEST(CatalogIo, LoadsWellFormedCatalog) {
  const auto c = load_catalog(
      "# vendor X spec sheet\n"
      "catalog vendorX\n"
      "mode 100 50 3000\n"
      "mode 400 112.5 1600\n");
  ASSERT_TRUE(c) << c.error().message;
  EXPECT_EQ(c->name(), "vendorX");
  ASSERT_EQ(c->size(), 2u);
  EXPECT_DOUBLE_EQ(c->max_reach_km(), 3000);
  // Derived knobs match the built-in derivation.
  const auto derived = derive_mode(400, 112.5, 1600);
  EXPECT_EQ(c->modes()[1].modulation, derived.modulation);
  EXPECT_DOUBLE_EQ(c->modes()[1].fec_overhead, derived.fec_overhead);
}

TEST(CatalogIo, BuiltInCatalogsRoundTrip) {
  for (const auto* catalog :
       {&svt_flexwan(), &bvt_radwan(), &fixed_grid_100g()}) {
    const auto reloaded = load_catalog(save_catalog(*catalog));
    ASSERT_TRUE(reloaded) << catalog->name();
    EXPECT_EQ(reloaded->name(), catalog->name());
    ASSERT_EQ(reloaded->size(), catalog->size());
    for (std::size_t i = 0; i < catalog->size(); ++i) {
      EXPECT_DOUBLE_EQ(reloaded->modes()[i].data_rate_gbps,
                       catalog->modes()[i].data_rate_gbps);
      EXPECT_DOUBLE_EQ(reloaded->modes()[i].spacing_ghz,
                       catalog->modes()[i].spacing_ghz);
      EXPECT_DOUBLE_EQ(reloaded->modes()[i].reach_km,
                       catalog->modes()[i].reach_km);
      EXPECT_EQ(reloaded->modes()[i].modulation,
                catalog->modes()[i].modulation);
    }
  }
}

struct BadCatalog {
  const char* text;
  const char* reason;
};

class CatalogIoErrorTest : public ::testing::TestWithParam<BadCatalog> {};

TEST_P(CatalogIoErrorTest, MalformedInputRejected) {
  const auto c = load_catalog(GetParam().text);
  ASSERT_FALSE(c) << GetParam().reason;
  EXPECT_EQ(c.error().code, "parse_error") << GetParam().reason;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CatalogIoErrorTest,
    ::testing::Values(
        BadCatalog{"", "empty document"},
        BadCatalog{"catalog x\n", "no modes"},
        BadCatalog{"mode 100 50 3000\n", "missing header"},
        BadCatalog{"catalog x\nmode 100 50\n", "missing reach"},
        BadCatalog{"catalog x\nmode -100 50 3000\n", "negative rate"},
        BadCatalog{"catalog x\nmode 100 0 3000\n", "zero spacing"},
        BadCatalog{"catalog x\nmode 100 50 3000\nmode 100 50 2000\n",
                   "duplicate row"},
        BadCatalog{"catalog x\nfrobnicate\n", "unknown keyword"}));

}  // namespace
}  // namespace flexwan::transponder
