// Tests for the util substrate: statistics, tables, RNG, Expected, strict
// CLI value parsing.
#include <gtest/gtest.h>

#include <array>

#include "util/cli.h"
#include "util/expected.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace flexwan {
namespace {

TEST(Expected, ValueAndErrorPaths) {
  Expected<int> ok(42);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Expected<int> bad(Error::make("nope", "broken"));
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, "nope");
  EXPECT_EQ(bad.error().message, "broken");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Expected, WorksWithMoveOnlyFlavouredTypes) {
  Expected<std::string> s(std::string("hello"));
  ASSERT_TRUE(s);
  EXPECT_EQ(s->size(), 5u);
  std::string taken = std::move(s).value();
  EXPECT_EQ(taken, "hello");
}

TEST(Stats, SummaryOfKnownSample) {
  const std::array<double, 5> v{1, 2, 3, 4, 100};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.mean, 22);
  EXPECT_DOUBLE_EQ(s.median, 3);
}

TEST(Stats, SummaryOfEmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::array<double, 1> one{5.0};
  const auto s = summarize(one);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.p99, 5.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 4> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
}

TEST(Stats, CdfAt) {
  const std::array<double, 4> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(cdf_at(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at({}, 1.0), 0.0);
}

TEST(Stats, CdfCurveMonotone) {
  const std::array<double, 6> v{5, 1, 3, 2, 4, 6};
  const std::array<double, 4> points{1.5, 3.0, 4.5, 6.0};
  const auto curve = cdf_curve(v, points);
  ASSERT_EQ(curve.size(), 4u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  EXPECT_DOUBLE_EQ(curve.back(), 1.0);
}

TEST(Stats, WeightedCdf) {
  const std::array<double, 3> v{1, 2, 3};
  const std::array<double, 3> w{1, 1, 8};
  EXPECT_DOUBLE_EQ(weighted_cdf_at(v, w, 2.0), 0.2);
  EXPECT_DOUBLE_EQ(weighted_cdf_at(v, w, 3.0), 1.0);
  // Missing weights default to 1.
  const std::array<double, 1> w1{1};
  EXPECT_DOUBLE_EQ(weighted_cdf_at(v, w1, 1.0), 1.0 / 3.0);
}

TEST(Stats, AsciiCdfRendersRows) {
  const std::array<double, 2> v{1, 2};
  const std::array<double, 2> points{1.0, 2.0};
  const auto text = ascii_cdf("demo", v, points);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("50%"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
}

TEST(Table, RendersAlignedMarkdownish) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const auto text = t.render();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("|-------|-------|"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  const auto text = t.render();
  EXPECT_NE(text.find("| x |   |   |"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(42.0, 0), "42");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInRange) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(1.5, 2.5);
    EXPECT_GE(v, 1.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, LognormalPositive) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GT(rng.lognormal(6.0, 0.7), 0.0);
  }
}

TEST(Cli, ParseIntInRangeAcceptsExactIntegers) {
  const auto ok = util::cli::parse_int_in_range("42", 0, 100);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(util::cli::parse_int_in_range("-8", -10, 10).value(), -8);
  // The bounds are inclusive.
  EXPECT_EQ(util::cli::parse_int_in_range("0", 0, 100).value(), 0);
  EXPECT_EQ(util::cli::parse_int_in_range("100", 0, 100).value(), 100);
}

TEST(Cli, ParseIntInRangeRejectsEveryMalformedShape) {
  for (const char* text : {"", "abc", "2.5", "7x", "1e3"}) {
    EXPECT_FALSE(util::cli::parse_int_in_range(text, 0, 100).has_value())
        << "accepted: '" << text << "'";
  }
  EXPECT_FALSE(util::cli::parse_int_in_range(nullptr, 0, 100).has_value());
  // Out of range — including strtoll saturation, which must error rather
  // than truncate into a silently-wrong value.
  EXPECT_FALSE(util::cli::parse_int_in_range("101", 0, 100).has_value());
  EXPECT_FALSE(util::cli::parse_int_in_range("-1", 0, 100).has_value());
  EXPECT_FALSE(
      util::cli::parse_int_in_range("99999999999999999999", 0, 100)
          .has_value());
}

TEST(Cli, ParseDoubleInRangeAcceptsFiniteValuesInRange) {
  const auto ok = util::cli::parse_double_in_range("2.5", 0.0, 10.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_DOUBLE_EQ(ok.value(), 2.5);
  EXPECT_DOUBLE_EQ(
      util::cli::parse_double_in_range("1e2", 0.0, 1000.0).value(), 100.0);
}

TEST(Cli, ParseDoubleInRangeRejectsNonFiniteAndOutOfRange) {
  for (const char* text : {"", "abc", "2.5x", "nan", "inf", "1e9999"}) {
    EXPECT_FALSE(
        util::cli::parse_double_in_range(text, 0.0, 1e12).has_value())
        << "accepted: '" << text << "'";
  }
  EXPECT_FALSE(util::cli::parse_double_in_range(nullptr, 0.0, 1.0).has_value());
  EXPECT_FALSE(
      util::cli::parse_double_in_range("10.1", 0.0, 10.0).has_value());
  EXPECT_FALSE(
      util::cli::parse_double_in_range("-0.1", 0.0, 10.0).has_value());
}

}  // namespace
}  // namespace flexwan
