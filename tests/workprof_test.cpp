// Tests for the work-attribution profiler (src/obs/workprof.h): the
// calling-context tree is byte-identical at 1 and 8 threads through the
// full lifecycle sim, exclusive work sums to the flat registry totals,
// folded output round-trips through the JSON artifact, and a seeded
// algorithmic change (KSP k+1) moves a *named* planner node.
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "obs/eventlog.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/workprof.h"
#include "planning/heuristic.h"
#include "sim/simulator.h"
#include "topology/builders.h"
#include "transponder/catalog.h"

namespace flexwan::obs {
namespace {

// Profiling-bundle observability state: metrics + events + workprof on,
// timing off — what report_from_flags enables for --bundle — restored to
// pristine on the way out.
class ProfileGuard {
 public:
  ProfileGuard() {
    Registry::instance().reset();
    EventLog::instance().reset();
    workprof::WorkProfile::instance().reset();
    set_metrics_enabled(true);
    set_timing_enabled(false);
    set_events_enabled(true);
    set_workprof_enabled(true);
  }
  ~ProfileGuard() {
    set_workprof_enabled(false);
    set_events_enabled(false);
    set_metrics_enabled(false);
    workprof::WorkProfile::instance().reset();
    EventLog::instance().reset();
    Registry::instance().reset();
  }
};

// One lifecycle sim run under the profiler; returns the three profile
// serializations plus the flat registry totals.
struct Capture {
  std::string profile_json;
  std::string folded;
  std::map<std::string, std::uint64_t> flat;
  MetricsSnapshot registry;
};

Capture run_sim(int threads, int trials = 4) {
  const auto net = topology::make_tbackbone();
  planning::HeuristicPlanner planner(transponder::svt_flexwan(), {});
  const auto plan = planner.plan(net);
  EXPECT_TRUE(plan);

  sim::LifecycleConfig config;
  config.trials = trials;
  config.timeline.horizon_days = 90.0;
  config.timeline.cut_rate_per_1000km_per_year = 6.0;
  config.timeline.growth_interval_days = 45.0;

  // Tools construct the engine before report_from_flags enables obs;
  // mirror that order so engine startup never lands in the profile.
  const engine::Engine engine(threads);
  const ProfileGuard guard;
  const auto report = sim::run_lifecycle(net, *plan,
                                         transponder::svt_flexwan(), config,
                                         engine);
  EXPECT_TRUE(report) << (report ? "" : report.error().message);

  Capture out;
  auto& profile = workprof::WorkProfile::instance();
  out.profile_json = profile.to_json();
  out.folded = profile.to_folded();
  out.flat = profile.flatten();
  out.registry = Registry::instance().snapshot();
  return out;
}

// The tentpole contract: the attributed-work tree — not just the flat
// counters — is byte-identical at every thread count.
TEST(WorkProfile, SimLifecycleTreeIsByteIdenticalAt1And8Threads) {
  const Capture serial = run_sim(1);
  const Capture threaded = run_sim(8);
  EXPECT_FALSE(serial.profile_json.empty());
  EXPECT_FALSE(serial.folded.empty());
  EXPECT_EQ(serial.profile_json, threaded.profile_json)
      << "profile.json differs";
  EXPECT_EQ(serial.folded, threaded.folded) << "profile.folded differs";

  // The tree actually has depth: the per-trial fan-out hangs under the
  // lifecycle span, and restoration work lands inside those frames.
  EXPECT_NE(serial.folded.find("sim.lifecycle;engine.parallel_for"),
            std::string::npos);
  EXPECT_NE(serial.profile_json.find("restoration.solve"),
            std::string::npos);
}

// Exclusive work is exhaustive: summing a counter's value over every tree
// node reproduces the flat registry total.  Nothing is attributed twice
// and nothing tracked escapes attribution.
TEST(WorkProfile, ExclusiveWorkSumsToFlatRegistryTotals) {
  const Capture capture = run_sim(8);
  ASSERT_FALSE(capture.flat.empty());

  std::map<std::string, std::uint64_t> per_counter;
  for (const auto& [key, value] : capture.flat) {
    // Flatten keys are "(root);frame;...;counter" — the counter name is
    // the last ';' segment.
    const auto pos = key.rfind(';');
    ASSERT_NE(pos, std::string::npos) << key;
    per_counter[key.substr(pos + 1)] += value;
  }
  ASSERT_FALSE(per_counter.empty());
  for (const auto& [name, total] : per_counter) {
    const auto it = capture.registry.counters.find(name);
    ASSERT_NE(it, capture.registry.counters.end()) << name;
    EXPECT_EQ(it->second, total) << name;
  }
  // And the reverse direction for the engine's own work counter: every
  // executed task was attributed somewhere.
  EXPECT_EQ(per_counter.at("engine.tasks_executed"),
            capture.registry.counters.at("engine.tasks_executed"));
  EXPECT_GT(per_counter.count("spectrum.first_fit.words_scanned"), 0u);
}

// profile.folded is derivable from profile.json alone: parsing the JSON
// artifact and re-deriving the folded stacks reproduces the file byte for
// byte (flamegraph tooling needs no second source of truth).
TEST(WorkProfile, FoldedOutputRoundTripsThroughTheJsonArtifact) {
  const Capture capture = run_sim(1);
  const auto doc = json::parse(capture.profile_json);
  ASSERT_TRUE(doc) << doc.error().message;
  EXPECT_EQ(doc->find("schema_version")->as_number(),
            workprof::kProfileSchemaVersion);
  EXPECT_EQ(doc->find("weight_default")->as_string(),
            workprof::kDefaultFoldedWeight);
  const json::Value* root = doc->find("root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(workprof::folded_from_json_tree(
                *root, workprof::kDefaultFoldedWeight),
            capture.folded);

  // flatten_json_tree mirrors the in-memory flatten (modulo the "profile."
  // prefix bundle_diff uses).
  std::map<std::string, double> fields;
  workprof::flatten_json_tree(*root, "profile.", fields);
  ASSERT_EQ(fields.size(), capture.flat.size());
  for (const auto& [key, value] : capture.flat) {
    const auto it = fields.find("profile." + key);
    ASSERT_NE(it, fields.end()) << key;
    EXPECT_EQ(it->second, static_cast<double>(value)) << key;
  }
}

// The exact gate catches real algorithmic drift: widening the KSP search
// by one path changes the planner's attributed work at a *named* node.
TEST(WorkProfile, KspDriftMovesANamedPlannerNode) {
  const auto net = topology::make_tbackbone();
  const auto profile_plan = [&](int k_paths) {
    planning::PlannerConfig config;
    config.k_paths = k_paths;
    planning::HeuristicPlanner planner(transponder::svt_flexwan(), config);
    const engine::Engine engine(4);
    const ProfileGuard guard;
    const auto plan = planner.plan(net);
    EXPECT_TRUE(plan);
    return workprof::WorkProfile::instance().flatten();
  };

  const auto baseline = profile_plan(3);
  const auto drifted = profile_plan(4);
  ASSERT_FALSE(baseline.empty());
  EXPECT_NE(baseline, drifted);

  // At least one differing key names the planner subtree, so the gate's
  // diff points at the phase whose work moved.
  bool planner_node_moved = false;
  for (const auto& [key, value] : baseline) {
    const auto it = drifted.find(key);
    if ((it == drifted.end() || it->second != value) &&
        key.find("planner.plan") != std::string::npos) {
      planner_node_moved = true;
      break;
    }
  }
  EXPECT_TRUE(planner_node_moved);
}

// Attribution is span-scoped: the same counter lands in different tree
// nodes depending on the open frames, and exclusive cost never leaks into
// the parent.
TEST(WorkProfile, AttributionFollowsTheSpanStack) {
  const ProfileGuard guard;
  {
    OBS_SPAN("outer");
    OBS_COUNTER_ADD("probe.work", 2);
    {
      OBS_SPAN("inner");
      OBS_COUNTER_ADD("probe.work", 5);
    }
  }
  OBS_COUNTER_ADD("probe.work", 1);

  const auto flat = workprof::WorkProfile::instance().flatten();
  EXPECT_EQ(flat.at("(root);outer;probe.work"), 2u);
  EXPECT_EQ(flat.at("(root);outer;inner;probe.work"), 5u);
  EXPECT_EQ(flat.at("(root);probe.work"), 1u);
  EXPECT_EQ(Registry::instance().snapshot().counters.at("probe.work"), 8u);
}

// Parallel work inherits the submitter's open frames: tasks run on worker
// threads attribute under <submitting spans>;engine.parallel_for, and the
// merge is independent of which worker ran what.
TEST(WorkProfile, ParallelWorkAttributesUnderTheSubmittingSpan) {
  const engine::Engine engine(8);
  const ProfileGuard guard;
  {
    OBS_SPAN("fan_out");
    engine.parallel_for(64, [](std::size_t) {
      OBS_COUNTER_ADD("probe.task", 1);
    });
  }
  const auto flat = workprof::WorkProfile::instance().flatten();
  EXPECT_EQ(flat.at("(root);fan_out;engine.parallel_for;probe.task"), 64u);
  EXPECT_EQ(
      flat.at("(root);fan_out;engine.parallel_for;engine.tasks_executed"),
      64u);
}

// Disabled profiler: no frames, no attribution, empty tree — the macro
// fast path costs one relaxed load.
TEST(WorkProfile, DisabledProfilerRecordsNothing) {
  Registry::instance().reset();
  workprof::WorkProfile::instance().reset();
  set_metrics_enabled(true);
  set_workprof_enabled(false);
  {
    OBS_SPAN("invisible");
    OBS_COUNTER_ADD("probe.off", 3);
  }
  EXPECT_TRUE(workprof::WorkProfile::instance().flatten().empty());
  // The flat registry still counted it: profiling is attribution, not
  // collection.
  EXPECT_EQ(Registry::instance().snapshot().counters.at("probe.off"), 3u);
  set_metrics_enabled(false);
  set_timing_enabled(false);
  Registry::instance().reset();
}

}  // namespace
}  // namespace flexwan::obs
